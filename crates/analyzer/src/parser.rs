//! Hand-rolled recursive-descent parser over the [`crate::lexer`] token
//! stream: enough Rust item grammar to recover the module tree, every
//! function (free, inherent, trait-default) with its body token range, and
//! the `cfg` attribute structure — with **no** external parser dependency,
//! matching the workspace's vendoring discipline.
//!
//! The parser is committed to *total coverage*: every token of a file must
//! be attributed to some parsed item. A construct it cannot classify is
//! recorded in [`ParsedFile::recovered`] (and skipped to the next item),
//! and the workspace round-trip test asserts that list stays empty — the
//! analyzer never silently degrades to pattern matching.

use crate::lexer::{lex, Lexed, TokKind, Token};

/// One function (or method) the parser recovered.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The bare function name.
    pub name: String,
    /// The `impl`/`trait` self type, when the fn is an associated item.
    pub self_ty: Option<String>,
    /// In-file module path (e.g. `["metrics"]` for `mod metrics { fn f }`).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line where the item starts (first attribute or visibility
    /// token) — the anchor for function-level justification tags.
    pub item_line: u32,
    /// True when the fn is test-only: under `#[cfg(test)]`, `#[test]`, or
    /// an enclosing test module.
    pub is_test: bool,
    /// Token index range `[start, end)` of the body **contents** (the
    /// tokens between the outer braces), empty for bodyless trait methods.
    pub body: (usize, usize),
}

impl FnInfo {
    /// `Type::name` or `module::name` display form.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named field of a top-level `struct`/`union`, with the head type
/// path resolved to its last segment (`AtomicU64`, `OnceLock`, …). The
/// atomics-protocol pass keys its field table on these.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Name of the enclosing struct or union.
    pub struct_name: String,
    /// The field name.
    pub name: String,
    /// Last segment of the field type's leading path, before any
    /// generic arguments — `OnceLock` for `OnceLock<Box<[AtomicU64]>>`,
    /// empty for tuple/array/fn-pointer types.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// True when the struct is test-only (`#[cfg(test)]` or enclosing
    /// test module).
    pub is_test: bool,
}

/// A fully parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub lexed: Lexed,
    pub fns: Vec<FnInfo>,
    /// Named fields of every top-level struct/union in the file.
    pub fields: Vec<FieldInfo>,
    /// Every `feature = "…"` string referenced anywhere in the file
    /// (cfg / cfg_attr attributes and `cfg!` macro calls), with its line.
    pub features: Vec<(String, u32)>,
    /// Top-level + nested items successfully classified.
    pub items: usize,
    /// Error-recovery events: `(line, description)`. Non-empty means the
    /// parser fell back to skipping — the round-trip test fails on this.
    pub recovered: Vec<(u32, String)>,
}

/// Lex-or-parse failure for a whole file.
#[derive(Debug)]
pub struct ParseError {
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.path, self.line, self.message)
    }
}

/// Words that introduce another item when they FOLLOW `const`/`unsafe`
/// (distinguishing `const fn f()` from `const F: u64`).
const PREFIXABLE: &[&str] = &["fn", "unsafe", "async", "extern", "trait", "impl"];

/// Attribute summary for one item.
#[derive(Default, Clone)]
struct Attrs {
    /// `#[cfg(test)]` / `#[test]` / `#[cfg(all(test, …))]`.
    test: bool,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    fns: Vec<FnInfo>,
    fields: Vec<FieldInfo>,
    features: Vec<(String, u32)>,
    items: usize,
    recovered: Vec<(u32, String)>,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.toks.get(self.pos + ahead)
    }

    fn at_punct(&self, text: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip one balanced delimiter group whose opener is the current
    /// token. Returns the token range of the group contents.
    fn skip_group(&mut self) -> (usize, usize) {
        let (open, close) = match self.peek(0).map(|t| t.text.as_str()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return (self.pos, self.pos),
        };
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1u32;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.pos;
                        self.pos += 1;
                        return (start, end);
                    }
                }
            }
            self.pos += 1;
        }
        (start, self.pos)
    }

    /// Skip a generic parameter/argument list starting at `<`. Handles
    /// `>>` closing two levels, `->` inside `Fn() -> T` bounds, and
    /// balanced `()`/`[]`/`{}` nested in const-generic positions.
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut angle = 0i32;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<<" => angle += if t.text == "<<" { 2 } else { 1 },
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" | "[" | "{" => {
                        self.skip_group();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
            if angle <= 0 {
                return;
            }
        }
    }

    /// Skip tokens up to and including the next `;` at delimiter depth 0
    /// (braced groups along the way are skipped whole, so `const X: T =
    /// […];` and `static`s with block initialisers work).
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" => {
                        self.pos += 1;
                        return;
                    }
                    "(" | "[" | "{" => {
                        self.skip_group();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Harvest the named fields of a braced struct/union body at token
    /// range `[lo, hi)`: field name plus the last segment of the type's
    /// leading path (before generics). Tuple fields and embedded
    /// attribute noise are skipped; the scan never fails, it only
    /// under-collects on grammar it does not model.
    fn collect_fields(&mut self, struct_name: &str, lo: usize, hi: usize, is_test: bool) {
        let mut j = lo;
        while j < hi {
            match self.toks[j].text.as_str() {
                "," | ";" | "pub" => {
                    j += 1;
                    // `pub(crate)`-style visibility scope.
                    if self.toks[j - 1].text == "pub" && j < hi && self.toks[j].text == "(" {
                        j = skip_balanced(self.toks, j, hi);
                    }
                    continue;
                }
                "#" => {
                    j += 1;
                    if j < hi && self.toks[j].text == "[" {
                        j = skip_balanced(self.toks, j, hi);
                    }
                    continue;
                }
                _ => {}
            }
            if self.toks[j].kind == TokKind::Ident && j + 1 < hi && self.toks[j + 1].text == ":" {
                let name = self.toks[j].text.clone();
                let line = self.toks[j].line;
                let mut k = j + 2;
                let mut ty = String::new();
                // Leading type path: `&`, `mut`, lifetimes, and `dyn`
                // prefixes are transparent; the last ident of the
                // `::`-chain wins.
                while k < hi {
                    let t = &self.toks[k];
                    match (t.kind, t.text.as_str()) {
                        (TokKind::Punct, "&") | (TokKind::Lifetime, _) => k += 1,
                        (TokKind::Ident, "mut" | "dyn") => k += 1,
                        (TokKind::Ident, _) => {
                            ty = t.text.clone();
                            k += 1;
                            if k < hi && self.toks[k].text == "::" {
                                k += 1;
                            } else {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                self.fields.push(FieldInfo {
                    struct_name: struct_name.to_string(),
                    name,
                    ty,
                    line,
                    is_test,
                });
                // Advance to the next depth-0 comma, treating generic
                // angle brackets as nesting.
                let mut depth = 0usize;
                let mut angle = 0usize;
                while k < hi {
                    match self.toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "<" => angle += 1,
                        ">" => angle = angle.saturating_sub(1),
                        ">>" => angle = angle.saturating_sub(2),
                        "," if depth == 0 && angle == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            } else {
                j += 1;
            }
        }
    }

    /// Harvest `feature = "…"` pairs from a token range (attribute or
    /// macro-argument contents).
    fn collect_features(&mut self, range: (usize, usize)) {
        let mut i = range.0;
        while i + 2 < range.1 {
            if self.toks[i].kind == TokKind::Ident
                && self.toks[i].text == "feature"
                && self.toks[i + 1].text == "="
                && self.toks[i + 2].kind == TokKind::Str
            {
                let lit = &self.toks[i + 2];
                let name = lit.text.trim_matches(|c| c == '"').to_string();
                self.features.push((name, lit.line));
                i += 3;
            } else {
                i += 1;
            }
        }
    }

    /// Parse one `#[…]` or `#![…]` attribute; the opener `#` is current.
    fn attribute(&mut self, attrs: &mut Attrs) {
        debug_assert!(self.at_punct("#"));
        self.pos += 1;
        if self.at_punct("!") {
            self.pos += 1;
        }
        let range = self.skip_group();
        let toks = &self.toks[range.0..range.1];
        let mentions = |word: &str| {
            toks.iter()
                .any(|t| t.kind == TokKind::Ident && t.text == word)
        };
        // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — any cfg or
        // bare attribute naming `test` marks the item test-only. (A
        // hypothetical `#[cfg(not(test))]` would be misclassified; the
        // workspace convention is that `test` in a cfg means test code.)
        if mentions("test") {
            attrs.test = true;
        }
        self.collect_features(range);
    }

    /// Parse the items of one module body (or the whole file when
    /// `closing` is false). `module` is the in-file module path.
    fn items(&mut self, module: &[String], in_test: bool, closing: bool) {
        loop {
            if self.peek(0).is_none() {
                return;
            }
            if closing && self.at_punct("}") {
                self.pos += 1;
                return;
            }
            self.item(module, in_test);
        }
    }

    /// Consume `pub`/`const`/`unsafe`/`async`/`default`/`extern` prefixes
    /// and return the item-defining keyword, which is also consumed.
    /// `const` and `unsafe` are treated as prefixes only when another
    /// prefixable keyword follows — otherwise they ARE the item keyword
    /// (`const F: u64 = …;`).
    fn modifiers_then_keyword(&mut self) -> Option<String> {
        loop {
            let t = self.peek(0)?;
            if t.kind != TokKind::Ident {
                return None;
            }
            match t.text.as_str() {
                "pub" => {
                    self.pos += 1;
                    if self.at_punct("(") {
                        self.skip_group();
                    }
                }
                "async" | "default" => self.pos += 1,
                "const" | "unsafe"
                    if self
                        .peek(1)
                        .is_some_and(|n| PREFIXABLE.contains(&n.text.as_str())) =>
                {
                    self.pos += 1;
                }
                "extern" => {
                    // `extern "C" fn`, `extern "C" { … }`, `extern crate x;`.
                    self.pos += 1;
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                        self.pos += 1;
                    }
                    if self.at_punct("{") {
                        return Some("extern-block".to_string());
                    }
                    if self.at_ident("crate") {
                        return Some("extern-crate".to_string());
                    }
                }
                other => {
                    let kw = other.to_string();
                    self.pos += 1;
                    return Some(kw);
                }
            }
        }
    }

    fn item(&mut self, module: &[String], in_test: bool) {
        // Stray semicolons are legal at item level.
        if self.at_punct(";") {
            self.pos += 1;
            return;
        }
        let item_line = self.line();
        let mut attrs = Attrs::default();
        while self.at_punct("#") {
            self.attribute(&mut attrs);
        }
        if self.peek(0).is_none() {
            return; // trailing inner attributes
        }
        let kw = self.modifiers_then_keyword();
        let Some(kw) = kw else {
            let line = self.line();
            let text = self.peek(0).map(|t| t.text.clone()).unwrap_or_default();
            self.recovered
                .push((line, format!("expected item, found `{text}`")));
            self.bump();
            return;
        };
        self.items += 1;
        match kw.as_str() {
            "use" => self.skip_to_semi(),
            "extern-crate" => self.skip_to_semi(),
            "extern-block" => {
                self.skip_group();
            }
            "mod" => {
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                if self.at_punct(";") {
                    self.pos += 1;
                } else if self.at_punct("{") {
                    self.pos += 1;
                    let mut path = module.to_vec();
                    path.push(name);
                    self.items(&path, in_test || attrs.test, true);
                }
            }
            "fn" => self.function(module, None, in_test || attrs.test, item_line),
            "struct" | "union" => {
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                self.skip_generics();
                // Unit `;`, tuple `(…) [where …];`, or `[where …] { … }`.
                loop {
                    match self.peek(0).map(|t| t.text.as_str()) {
                        Some(";") => {
                            self.pos += 1;
                            break;
                        }
                        Some("(") => {
                            self.skip_group();
                            self.skip_to_semi();
                            break;
                        }
                        Some("{") => {
                            let (lo, hi) = self.skip_group();
                            self.collect_fields(&name, lo, hi, in_test || attrs.test);
                            break;
                        }
                        Some("<") => self.skip_generics(),
                        Some(_) => {
                            self.pos += 1;
                        }
                        None => break,
                    }
                }
            }
            "enum" => {
                self.bump();
                self.skip_generics();
                while !(self.at_punct("{") || self.peek(0).is_none()) {
                    self.pos += 1;
                }
                self.skip_group();
            }
            "trait" => {
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                self.skip_generics();
                while !(self.at_punct("{") || self.at_punct(";") || self.peek(0).is_none()) {
                    if self.at_punct("<") {
                        self.skip_generics();
                    } else {
                        self.pos += 1;
                    }
                }
                if self.at_punct(";") {
                    self.pos += 1; // trait alias
                } else {
                    self.assoc_items(module, &name, in_test || attrs.test);
                }
            }
            "impl" => {
                self.skip_generics();
                // Header up to `{`: `Type`, `Trait for Type`, `!Trait for
                // Type`. Self type = last path segment before the body,
                // after the top-level `for` if present (skipping HRTB
                // `for<…>`).
                let mut last_ident: Option<String> = None;
                let mut in_where = false;
                loop {
                    match self.peek(0) {
                        None => return,
                        Some(t) if t.kind == TokKind::Punct && t.text == "{" => break,
                        Some(t) if t.kind == TokKind::Punct && t.text == "<" => {
                            self.skip_generics();
                        }
                        Some(t) if t.kind == TokKind::Punct && t.text == "(" => {
                            self.skip_group();
                        }
                        Some(t) => {
                            if t.kind == TokKind::Ident && t.text == "for" && !in_where {
                                if self.peek(1).is_some_and(|n| n.text == "<") {
                                    self.pos += 1;
                                    self.skip_generics();
                                    continue;
                                }
                                last_ident = None;
                            } else if t.kind == TokKind::Ident && t.text == "where" {
                                in_where = true;
                            } else if t.kind == TokKind::Ident && t.text != "dyn" && !in_where {
                                last_ident = Some(t.text.clone());
                            }
                            self.pos += 1;
                        }
                    }
                }
                let ty = last_ident.unwrap_or_else(|| "?".to_string());
                self.assoc_items(module, &ty, in_test || attrs.test);
            }
            "type" => self.skip_to_semi(),
            "const" | "static" => self.skip_to_semi(),
            "macro_rules" => {
                if self.at_punct("!") {
                    self.pos += 1;
                }
                self.bump(); // macro name
                self.skip_group();
            }
            other => {
                // Item-position macro invocation: `ident!{…}` / `ident!(…);`.
                if self.at_punct("!") {
                    self.pos += 1;
                    let braced = self.at_punct("{");
                    let range = self.skip_group();
                    self.collect_features(range);
                    if !braced && self.at_punct(";") {
                        self.pos += 1;
                    }
                } else {
                    self.recovered
                        .push((item_line, format!("unrecognised item keyword `{other}`")));
                    self.skip_to_semi();
                }
            }
        }
    }

    /// Items inside an `impl` or `trait` body; the `{` is current.
    fn assoc_items(&mut self, module: &[String], self_ty: &str, in_test: bool) {
        debug_assert!(self.at_punct("{"));
        self.pos += 1;
        loop {
            if self.at_punct("}") {
                self.pos += 1;
                return;
            }
            if self.peek(0).is_none() {
                return;
            }
            if self.at_punct(";") {
                self.pos += 1;
                continue;
            }
            let item_line = self.line();
            let mut attrs = Attrs::default();
            while self.at_punct("#") {
                self.attribute(&mut attrs);
            }
            match self.modifiers_then_keyword().as_deref() {
                Some("fn") => {
                    self.items += 1;
                    self.function(module, Some(self_ty), in_test || attrs.test, item_line);
                }
                Some("type") | Some("const") => {
                    self.items += 1;
                    self.skip_to_semi();
                }
                Some(other) => {
                    self.recovered
                        .push((item_line, format!("unrecognised impl item `{other}`")));
                    self.skip_to_semi();
                }
                None => {
                    let text = self.peek(0).map(|t| t.text.clone()).unwrap_or_default();
                    if text.is_empty() {
                        return;
                    }
                    self.recovered
                        .push((item_line, format!("unrecognised impl item `{text}`")));
                    self.bump();
                }
            }
        }
    }

    /// The `fn` keyword has just been consumed.
    fn function(
        &mut self,
        module: &[String],
        self_ty: Option<&str>,
        is_test: bool,
        item_line: u32,
    ) {
        let line = self.line();
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        self.skip_generics();
        if self.at_punct("(") {
            self.skip_group();
        }
        // Return type / where clause: scan to the body `{` or a `;`
        // (bodyless trait method) at angle/paren depth 0.
        let mut body = (self.pos, self.pos);
        loop {
            match self.peek(0).map(|t| t.text.as_str()) {
                None => break,
                Some(";") => {
                    self.pos += 1;
                    break;
                }
                Some("{") => {
                    body = self.skip_group();
                    // Bodies can gate code with `cfg!(feature = "…")` or
                    // carry cfg attributes on statements; harvest those
                    // for the feature-consistency rule.
                    self.collect_features(body);
                    break;
                }
                Some("<") => self.skip_generics(),
                Some("(") | Some("[") => {
                    self.skip_group();
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
        self.fns.push(FnInfo {
            name,
            self_ty: self_ty.map(str::to_string),
            module: module.to_vec(),
            line,
            item_line,
            is_test,
            body,
        });
    }
}

/// Lex and parse one file.
/// `toks[open]` is `(`/`[`/`{`: return the index just past the matching
/// closer (clamped to `hi`). Used by scans that walk a token range
/// without the cursor.
fn skip_balanced(toks: &[Token], open: usize, hi: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut j = open;
    while j < hi {
        if toks[j].kind == TokKind::Punct {
            if toks[j].text == o {
                depth += 1;
            } else if toks[j].text == c {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    hi
}

pub fn parse_file(path: &str, src: &str) -> Result<ParsedFile, ParseError> {
    let lexed = lex(src).map_err(|e| ParseError {
        path: path.to_string(),
        line: e.line,
        message: e.message,
    })?;
    let mut parser = Parser {
        toks: &lexed.tokens,
        pos: 0,
        fns: Vec::new(),
        fields: Vec::new(),
        features: Vec::new(),
        items: 0,
        recovered: Vec::new(),
    };
    parser.items(&[], false, false);
    let Parser {
        fns,
        fields,
        features,
        items,
        recovered,
        ..
    } = parser;
    Ok(ParsedFile {
        path: path.to_string(),
        lexed,
        fns,
        fields,
        features,
        items,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        let f = parse_file("crates/test/src/lib.rs", src).expect("parse");
        assert!(f.recovered.is_empty(), "recovered: {:?}", f.recovered);
        f
    }

    #[test]
    fn free_and_associated_fns() {
        let f = parsed(
            "pub fn alpha(x: u64) -> u64 { x }\n\
             struct S { a: u64 }\n\
             impl S { pub(crate) fn beta(&self) -> u64 { self.a } }\n\
             trait T { fn gamma(&self) -> bool { true } fn delta(&self); }\n\
             impl T for S { fn delta(&self) {} }\n",
        );
        let names: Vec<String> = f.fns.iter().map(FnInfo::qualified).collect();
        assert_eq!(
            names,
            vec!["alpha", "S::beta", "T::gamma", "T::delta", "S::delta"]
        );
    }

    #[test]
    fn impl_for_with_generics_resolves_self_type() {
        let f = parsed(
            "impl<T: Ord + Clone, P, R> Engine<T, P, R> where R: Copy {\n\
                 fn run(&mut self) {}\n\
             }\n\
             impl<'a, T> Iterator for Chunks<'a, T> { fn next(&mut self) -> Option<u8> { None } }\n",
        );
        assert_eq!(f.fns[0].qualified(), "Engine::run");
        assert_eq!(f.fns[1].qualified(), "Chunks::next");
    }

    #[test]
    fn cfg_test_marks_fns() {
        let f = parsed(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} #[test] fn case() {} }\n\
             #[cfg(all(test, feature = \"x\"))] fn gated() {}\n",
        );
        let test_flags: Vec<(String, bool)> =
            f.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            test_flags,
            vec![
                ("live".to_string(), false),
                ("helper".to_string(), true),
                ("case".to_string(), true),
                ("gated".to_string(), true),
            ]
        );
    }

    #[test]
    fn features_collected_from_attrs_and_macros() {
        let f = parsed(
            "#[cfg(feature = \"audit\")] fn a() {}\n\
             #[cfg_attr(not(feature = \"fast\"), allow(dead_code))] fn b() {\n\
                 if cfg!(feature = \"slow\") { }\n\
             }\n",
        );
        let mut names: Vec<String> = f.features.into_iter().map(|(n, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["audit", "fast", "slow"]);
    }

    #[test]
    fn fn_return_types_with_generics() {
        let f = parsed(
            "fn a() -> Vec<Vec<u64>> { Vec::new() }\n\
             fn b() -> impl Iterator<Item = (u64, u64)> + 'static { std::iter::empty() }\n\
             fn c<F: FnMut(u64) -> bool>(f: F) -> Option<Box<dyn Fn() -> u8>> { None }\n",
        );
        assert_eq!(f.fns.len(), 3);
        assert!(f.fns.iter().all(|f| f.body.0 <= f.body.1));
    }

    #[test]
    fn items_are_skipped_cleanly() {
        let f = parsed(
            "use std::fmt;\n\
             const TABLE: &[(&str, u64)] = &[(\"a\", 1)];\n\
             static mut COUNTER: u64 = 0;\n\
             type Alias<T> = Vec<T>;\n\
             macro_rules! m { ($x:expr) => { $x }; }\n\
             thread_local! { static TL: u8 = 0; }\n\
             extern \"C\" { fn c_side(); }\n\
             enum E<T> { A(T), B { x: u64 } }\n\
             union U { a: u32, b: f32 }\n\
             pub struct Tuple(pub u64, u8);\n",
        );
        assert!(f.recovered.is_empty());
        assert!(f.items >= 10);
    }
}
