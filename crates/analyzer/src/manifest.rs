//! Minimal Cargo.toml reader for the feature-gate consistency rule.
//!
//! This is not a TOML parser; it understands exactly the subset the
//! workspace manifests use: `[section]` headers, `key = value` lines,
//! single-line arrays, and comments. That is enough to answer the two
//! questions MRL-A004 asks: which features does a crate declare, and is
//! a declared feature a pure forwarder (its array is empty) or does it
//! enable something (optional deps / downstream features)?

use std::collections::BTreeMap;

/// One declared feature.
#[derive(Debug, Clone)]
pub struct FeatureDecl {
    /// 1-based line in Cargo.toml.
    pub line: u32,
    /// True when the feature's value array lists at least one element
    /// (a forwarded feature or `dep:` activation) — such features are
    /// meaningful even when no `cfg(feature)` in the crate references
    /// them, so the unused-feature check skips them.
    pub forwards: bool,
}

/// Parsed manifest facts.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Package name from `[package] name = "…"`.
    pub name: String,
    /// Declared features from the `[features]` table, plus implicit
    /// features created by `optional = true` dependencies.
    pub features: BTreeMap<String, FeatureDecl>,
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

/// Strip a trailing `# comment` that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse the subset of `Cargo.toml` we need.
pub fn parse(src: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            section = h.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                if let Some(v) = unquote(value) {
                    m.name = v.to_string();
                }
            }
            "features" => {
                let inner = value.trim_start_matches('[').trim_end_matches(']').trim();
                m.features.insert(
                    key.to_string(),
                    FeatureDecl {
                        line: (idx + 1) as u32,
                        forwards: !inner.is_empty(),
                    },
                );
            }
            // Inline tables: `foo = { path = "…", optional = true }`
            // create an implicit feature `foo` that activates the dep.
            s if (s == "dependencies"
                || s == "dev-dependencies"
                || s.starts_with("target.") && s.ends_with("dependencies"))
                && value.contains("optional")
                && value.contains("true") =>
            {
                m.features.entry(key.to_string()).or_insert(FeatureDecl {
                    line: (idx + 1) as u32,
                    forwards: true,
                });
            }
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_features_and_forwarding() {
        let m = parse(
            "[package]\n\
             name = \"mrl-obs\"\n\
             version = \"0.1.0\"\n\
             \n\
             [features]\n\
             tracing = [\"dep:tracing\"]\n\
             invariant-audit = []\n\
             \n\
             [dependencies]\n\
             tracing = { path = \"../../vendor/tracing\", optional = true }\n",
        );
        assert_eq!(m.name, "mrl-obs");
        assert!(m.features["tracing"].forwards);
        assert!(!m.features["invariant-audit"].forwards);
    }

    #[test]
    fn comments_and_missing_tables_are_fine() {
        let m = parse(
            "[package]\n\
             name = \"mrl-core\" # the core crate\n\
             [dependencies]\n\
             mrl-framework = { path = \"../framework\" }\n",
        );
        assert_eq!(m.name, "mrl-core");
        assert!(m.features.is_empty());
    }
}
