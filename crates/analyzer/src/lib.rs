//! Parser-based static analysis for the MRL workspace.
//!
//! This crate grows the lexer-only hygiene linter in `xtask` into a real
//! analysis engine. It carries **zero dependencies** — the Rust parser
//! is hand-rolled recursive descent over the token stream produced by
//! [`lexer`], enough of the item grammar to recover every function body,
//! its enclosing impl type, module path, and test-ness. On top of that
//! sit a workspace module map, a function-level call graph, per-function
//! control-flow graphs ([`cfg`]), an interprocedural summary engine
//! ([`summary`]: SCC condensation + bottom-up fixpoint), and ten
//! analyses:
//!
//! | rule | analysis |
//! |------|----------|
//! | MRL-A001 | panic-reachability: no `panic!`/`unwrap`/`expect`/unchecked indexing transitively reachable from hot-path entry points |
//! | MRL-A002 | arithmetic-safety: `+ - * <<` on exact-accounting values must be checked/saturating/widening or justified |
//! | MRL-A003 | allocation-in-hot-path: no `Vec::new`/`push`/`collect`/… reachable from the per-element ingest path |
//! | MRL-A004 | feature-gate consistency: `cfg(feature = "…")` strings ↔ the crate's `[features]` table, both directions |
//! | MRL-A005 | atomics-protocol: `Relaxed` publishes that skip a `Release` on some path, CAS failure orderings stronger than success, seqlock readers without re-read validation |
//! | MRL-A006 | channel-topology: bounded send/recv cycles, receivers dropped while senders remain, blocking bounded sends inside recv-blocked loops |
//! | MRL-A007 | accounting-dataflow: weight/mass/total_n values read on seal/collapse/shipment paths must reach a credit on every path |
//! | MRL-A008 | nondeterminism-taint: unseeded RNGs, hash-order iteration, time/TSC reads, and `recv` completion order must not reach result-affecting paths |
//! | MRL-A009 | unsafe-containment: every `unsafe` site needs a `// safety:` contract and must live on the file allowlist |
//! | MRL-A010 | panic-justification audit: `// panic-free:` tags contradicted by must-panic summaries, or stale under the sharper CFG-aware reachability |
//!
//! Findings carry the same FNV-1a, line-number-independent fingerprints
//! as the lexer linter and ratchet against a committed baseline
//! (`crates/xtask/analyze-baseline.txt`). Suppression is by
//! justification tag: `// panic-free:`, `// arith:`, `// alloc:`,
//! `// protocol:` (A005/A006), `// nondet:` (A008), `// safety:`
//! (A009).
//!
//! The entry point is [`workspace::Workspace::load`] followed by
//! [`rules::analyze`]; `cargo xtask analyze` drives both.

pub mod atomics;
pub mod cfg;
pub mod channels;
pub mod dataflow;
pub mod facts;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod nondet;
pub mod parser;
pub mod rules;
pub mod summary;
pub mod unsafety;
pub mod workspace;

pub use rules::{analyze, Finding};
pub use workspace::Workspace;
