//! A full-fidelity Rust lexer: the token stream the recursive-descent
//! parser consumes.
//!
//! Unlike the pattern linter's line lexer (`xtask::lex`), this one keeps
//! every token — identifiers, lifetimes, all literal forms, maximal-munch
//! punctuation — so the parser can rebuild item structure, and it records
//! comment text per line so the analyses can honour justification tags
//! (`// panic-free:`, `// arith:`, `// alloc:`).
//!
//! The round-trip guarantee the workspace test relies on: `lex` either
//! consumes the entire input into tokens (plus comment/whitespace trivia)
//! or returns an error naming the offending line — it never silently skips
//! bytes. Re-rendering the tokens space-separated and lexing again yields
//! the identical token sequence (lex∘render fixpoint).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Token classification. Punctuation keeps its exact text; literals keep
/// their delimiters and contents (feature-gate analysis reads string
/// contents back out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the parser distinguishes keywords by text).
    Ident,
    /// `'a`, `'static` — a lifetime (no closing quote).
    Lifetime,
    /// Integer literal, including suffixed (`5_000u64`, `0xff`).
    Int,
    /// Float literal (`0.01`, `1e-4`, `2.5f64`).
    Float,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`, `b'c'`.
    Str,
    /// Operator or delimiter, maximal munch (`<<=`, `->`, `::`, `{`, …).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A fully lexed source file: tokens plus the comment trivia the
/// justification-tag lookup needs.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// 1-based line → concatenated comment text on that line.
    pub comments: BTreeMap<u32, String>,
    /// Lines that carry at least one token (used to find the contiguous
    /// comment block immediately above a statement).
    pub code_lines: BTreeSet<u32>,
}

/// Lexing failure: unterminated literal or an unrecognisable byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

const PUNCT3: &[&str] = &["<<=", ">>=", "..=", "..."];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "..",
];
const PUNCT1: &str = "+-*/%^&|!<>=.,;:#?@(){}[]~$";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.code_lines.insert(line);
        self.out.tokens.push(Token { kind, text, line });
    }

    /// Consume `n` chars into `buf`, counting newlines.
    fn take(&mut self, n: usize, buf: &mut String) {
        for _ in 0..n {
            if let Some(c) = self.peek(0) {
                if c == '\n' {
                    self.line += 1;
                }
                buf.push(c);
                self.pos += 1;
            }
        }
    }

    fn comment_text(&mut self, line: u32, text: &str) {
        let entry = self.out.comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text);
    }

    fn run(mut self) -> Result<Lexed, LexError> {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if c.is_whitespace() {
                self.pos += 1;
                continue;
            }
            if c == '/' && self.peek(1) == Some('/') {
                let start = self.pos;
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let line = self.line;
                self.comment_text(line, &text);
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                self.block_comment()?;
                continue;
            }
            if c.is_ascii_digit() {
                self.number();
                continue;
            }
            if is_ident_start(c) {
                self.ident_or_prefixed_literal()?;
                continue;
            }
            if c == '"' {
                self.string_literal(0)?;
                continue;
            }
            if c == '\'' {
                self.char_or_lifetime()?;
                continue;
            }
            self.punct(c)?;
        }
        Ok(self.out)
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let mut depth = 0u32;
        let mut text = String::new();
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.take(2, &mut text);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.take(2, &mut text);
                    if depth == 0 {
                        break;
                    }
                }
                (Some(_), _) => self.take(1, &mut text),
                (None, _) => return Err(self.err("unterminated block comment")),
            }
        }
        // Attribute every line the block spans so a tag inside a block
        // comment above a statement is found by the upward walk.
        for (offset, part) in text.split('\n').enumerate() {
            self.comment_text(line + offset as u32, part);
        }
        Ok(())
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.take(2, &mut text);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.take(1, &mut text);
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.take(1, &mut text);
            }
            // `1.5` is a float; `1..n` and `1.max(…)` keep the int.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.take(1, &mut text);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.take(1, &mut text);
                }
            }
            // Exponent: `1e9`, `1e-4`, `2.5E+3`.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
                if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    self.take(1 + sign, &mut text);
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.take(1, &mut text);
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize`) glued to the literal.
        while self.peek(0).is_some_and(is_ident_continue) {
            if matches!(self.peek(0), Some('f')) && matches!(self.peek(1), Some('3' | '6')) {
                float = true;
            }
            self.take(1, &mut text);
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn ident_or_prefixed_literal(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'c'` — the ident was
        // actually a literal prefix.
        if matches!(ident.as_str(), "r" | "b" | "br" | "rb") {
            match self.peek(0) {
                Some('"') => {
                    self.pos = start;
                    return self.prefixed_string(ident.len());
                }
                Some('#') if ident != "b" => {
                    self.pos = start;
                    return self.prefixed_string(ident.len());
                }
                Some('\'') if ident == "b" => {
                    self.pos = start;
                    return self.byte_char();
                }
                _ => {}
            }
        }
        self.push(TokKind::Ident, ident, line);
        Ok(())
    }

    /// A string literal with `prefix_len` prefix chars (`r`, `b`, `br`)
    /// already positioned at `self.pos`.
    fn prefixed_string(&mut self, prefix_len: usize) -> Result<(), LexError> {
        let line = self.line;
        let mut text = String::new();
        self.take(prefix_len, &mut text);
        let raw = text.contains('r');
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.take(1, &mut text);
            }
            if self.peek(0) != Some('"') {
                return Err(self.err("malformed raw string"));
            }
            self.take(1, &mut text);
            loop {
                match self.peek(0) {
                    Some('"') => {
                        let closed = (0..hashes).all(|h| self.peek(1 + h) == Some('#'));
                        self.take(1, &mut text);
                        if closed {
                            self.take(hashes, &mut text);
                            break;
                        }
                    }
                    Some(_) => self.take(1, &mut text),
                    None => return Err(self.err("unterminated raw string")),
                }
            }
            self.push(TokKind::Str, text, line);
            Ok(())
        } else {
            self.string_body(text, line)
        }
    }

    fn string_literal(&mut self, _prefix: usize) -> Result<(), LexError> {
        let line = self.line;
        self.string_body(String::new(), line)
    }

    /// Consume from the opening `"` of a non-raw string.
    fn string_body(&mut self, mut text: String, line: u32) -> Result<(), LexError> {
        debug_assert_eq!(self.peek(0), Some('"'));
        self.take(1, &mut text);
        loop {
            match self.peek(0) {
                Some('\\') => self.take(2, &mut text),
                Some('"') => {
                    self.take(1, &mut text);
                    break;
                }
                Some(_) => self.take(1, &mut text),
                None => return Err(self.err("unterminated string")),
            }
        }
        self.push(TokKind::Str, text, line);
        Ok(())
    }

    fn byte_char(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let mut text = String::new();
        self.take(1, &mut text); // b
        self.char_body(text, line)
    }

    fn char_or_lifetime(&mut self) -> Result<(), LexError> {
        let line = self.line;
        // `'a'` / `'\n'` are chars; `'a` / `'static` are lifetimes.
        let is_char = self.peek(1) == Some('\\')
            || (self.peek(1).is_some_and(|c| c != '\'') && self.peek(2) == Some('\''));
        if is_char {
            return self.char_body(String::new(), line);
        }
        let mut text = String::new();
        self.take(1, &mut text);
        if !self.peek(0).is_some_and(is_ident_start) {
            return Err(self.err("stray single quote"));
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.take(1, &mut text);
        }
        self.push(TokKind::Lifetime, text, line);
        Ok(())
    }

    /// Consume from the opening `'` of a char literal.
    fn char_body(&mut self, mut text: String, line: u32) -> Result<(), LexError> {
        self.take(1, &mut text); // '
        loop {
            match self.peek(0) {
                Some('\\') => self.take(2, &mut text),
                Some('\'') => {
                    self.take(1, &mut text);
                    break;
                }
                Some(_) => self.take(1, &mut text),
                None => return Err(self.err("unterminated char literal")),
            }
        }
        self.push(TokKind::Str, text, line);
        Ok(())
    }

    fn punct(&mut self, c: char) -> Result<(), LexError> {
        let line = self.line;
        let three: String = (0..3).filter_map(|i| self.peek(i)).collect();
        if three.len() == 3 && PUNCT3.contains(&three.as_str()) {
            self.pos += 3;
            self.push(TokKind::Punct, three, line);
            return Ok(());
        }
        let two: String = (0..2).filter_map(|i| self.peek(i)).collect();
        if two.len() == 2 && PUNCT2.contains(&two.as_str()) {
            self.pos += 2;
            self.push(TokKind::Punct, two, line);
            return Ok(());
        }
        if PUNCT1.contains(c) {
            self.pos += 1;
            self.push(TokKind::Punct, c.to_string(), line);
            return Ok(());
        }
        Err(self.err(format!("unrecognised character {c:?}")))
    }
}

/// Lex a whole source file. Errors name the offending line; success means
/// every byte was consumed into a token or trivia.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("0..n");
        assert_eq!(
            toks,
            vec![
                (TokKind::Int, "0".into()),
                (TokKind::Punct, "..".into()),
                (TokKind::Ident, "n".into()),
            ]
        );
    }

    #[test]
    fn scientific_and_suffixed_literals() {
        assert_eq!(kinds("1e-4")[0], (TokKind::Float, "1e-4".into()));
        assert_eq!(kinds("5_000u64")[0], (TokKind::Int, "5_000u64".into()));
        assert_eq!(kinds("0.5f64")[0], (TokKind::Float, "0.5f64".into()));
        assert_eq!(kinds("0xcbf2")[0], (TokKind::Int, "0xcbf2".into()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(kinds("'a'")[0], (TokKind::Str, "'a'".into()));
        assert_eq!(kinds("'\\n'")[0], (TokKind::Str, "'\\n'".into()));
        assert_eq!(
            kinds("&'static str")[1],
            (TokKind::Lifetime, "'static".into())
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            kinds("r#\"a \" b\"#")[0],
            (TokKind::Str, "r#\"a \" b\"#".into())
        );
        assert_eq!(kinds("b\"xy\"")[0], (TokKind::Str, "b\"xy\"".into()));
        assert_eq!(kinds("b'z'")[0], (TokKind::Str, "b'z'".into()));
    }

    #[test]
    fn maximal_munch_punct() {
        let toks = kinds("a <<= b >> c -> d ..= e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(puncts, vec!["<<=", ">>", "->", "..="]);
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let lexed = lex("// panic-free: a\nlet x = 1; // inline\n/* multi\nline */\n").unwrap();
        assert!(lexed.comments[&1].contains("panic-free:"));
        assert!(lexed.comments[&2].contains("inline"));
        assert!(lexed.comments[&3].contains("multi"));
        assert!(lexed.comments[&4].contains("line"));
        assert!(lexed.code_lines.contains(&2));
        assert!(!lexed.code_lines.contains(&1));
    }

    #[test]
    fn doc_comment_with_code_fence() {
        let lexed = lex("/// let x = vec![1.];\nfn f() {}\n").unwrap();
        assert_eq!(lexed.tokens[0].text, "fn");
    }
}
