//! MRL-A009 — unsafe-containment pass.
//!
//! The workspace is `unsafe`-averse by design: the only sanctioned site
//! is the rdtsc intrinsic in `mrl-obs::timer` (a no-precondition
//! instruction read). This pass enforces two obligations on every
//! `unsafe` block or `unsafe fn` in non-test code, workspace-wide:
//!
//! 1. **Contract tag** — the site must carry a `// safety:` comment
//!    (case-insensitive, so conventional `// SAFETY:` blocks count)
//!    stating the discharged obligations, on the site line, the comment
//!    block above it, or the enclosing item.
//! 2. **Allowlist confinement** — the containing file must be on
//!    [`UNSAFE_ALLOWLIST`]. Everything else is a finding, annotated with
//!    the interprocedural context the summaries give us: the direct
//!    workspace callers and whether a hot-path root reaches the site.
//!
//! There is deliberately no tag that waives the allowlist: growing it is
//! a reviewed edit to this file, not a comment.

use crate::graph::CallGraph;
use crate::rules::{justified, lexed_of, snippet_of, Finding, HOT_CRATES, PANIC_ROOTS};
use crate::summary::Summaries;
use crate::workspace::Workspace;

/// Files allowed to contain `unsafe` code.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/obs/src/timer.rs"];

pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    let roots = graph.find(|f| {
        !f.info.is_test
            && HOT_CRATES.contains(&f.krate.as_str())
            && PANIC_ROOTS.contains(&f.info.name.as_str())
    });
    let hot_reach = graph.reach(&roots);
    for (i, f) in graph.fns.iter().enumerate() {
        if f.info.is_test {
            continue;
        }
        let s = &summaries.fns[i];
        let mut sites: Vec<(u32, &str)> = s
            .unsafe_sites
            .iter()
            .map(|u| (u.line, "unsafe block"))
            .collect();
        if s.unsafe_fn {
            sites.push((f.info.line, "unsafe fn"));
        }
        if sites.is_empty() {
            continue;
        }
        let lexed = lexed_of(ws, &f.path);
        let allowed = UNSAFE_ALLOWLIST.iter().any(|p| f.path.ends_with(p));
        let callers = {
            let mut names: Vec<String> = Summaries::callers_of(graph, i)
                .into_iter()
                .map(|c| graph.fns[c].label())
                .collect();
            names.sort();
            names.dedup();
            if names.is_empty() {
                "no workspace callers".to_string()
            } else {
                format!("called by {}", names.join(", "))
            }
        };
        let hot = if hot_reach.contains_key(&i) {
            "reachable from a hot-path root"
        } else {
            "not reachable from a hot-path root"
        };
        for (line, what) in sites {
            if !justified(lexed, line, f.info.item_line, "MRL-A009") {
                out.push(Finding {
                    rule: "MRL-A009",
                    path: f.path.clone(),
                    line,
                    snippet: snippet_of(lexed, line),
                    fingerprint: 0,
                    message: format!(
                        "{what} in {} has no `// safety:` contract tag stating the \
                         discharged obligations",
                        f.label()
                    ),
                });
            }
            if !allowed {
                out.push(Finding {
                    rule: "MRL-A009",
                    path: f.path.clone(),
                    line,
                    snippet: snippet_of(lexed, line),
                    fingerprint: 0,
                    message: format!(
                        "{what} in {} is outside the unsafe allowlist ({}) — {callers}; {hot}",
                        f.label(),
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            }
        }
    }
}
