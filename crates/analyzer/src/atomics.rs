//! MRL-A005 — atomics-protocol checker.
//!
//! Collects every atomic operation (receiver field, op kind, `Ordering`
//! arguments) per function, keys them on the workspace-wide table of
//! `Atomic*`-typed struct fields from the parser, and runs three checks
//! over the per-function CFG:
//!
//! 1. **Relaxed publish without a Release on every path** — a `Relaxed`
//!    store to a field that is Acquire-loaded elsewhere must be
//!    followed, on *all* CFG paths to exit, by a Release-class write
//!    (the publish that makes the relaxed write visible in order).
//! 2. **CAS failure ordering stronger than success** — `compare_exchange`
//!    whose failure ordering out-ranks its success ordering is a
//!    protocol smell: the failed path promises more than the taken one.
//! 3. **Seqlock readers without re-read validation** — when a writer
//!    pairs a `Relaxed` bump of field A with a later Release store to
//!    field B (journal.rs's reserve/publish shape), a reader that
//!    Acquire-loads B and then loads other atomics must re-read A
//!    afterwards, or torn data can escape the validation window.
//!
//! Fields are keyed by *name* across the workspace — same
//! over-approximation as call-graph resolution (DESIGN.md §3.11/§3.15).
//! Suppression: `// protocol:` on the op line or the enclosing fn.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::FnInfo;
use crate::rules::{justified, snippet_of, Finding};
use crate::workspace::Workspace;

/// The atomic method families we model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    Load,
    Store,
    Rmw,
    Cas,
}

/// Memory orderings, in source-name form.
pub(crate) const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const RMW_OPS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Strength rank for the CAS check: Acquire and Release are
/// incomparable one-sided halves, both rank 1.
fn rank(order: &str) -> u8 {
    match order {
        "Relaxed" => 0,
        "Acquire" | "Release" => 1,
        "AcqRel" => 2,
        _ => 3, // SeqCst
    }
}

fn is_release_class(order: &str) -> bool {
    matches!(order, "Release" | "AcqRel" | "SeqCst")
}

fn is_acquire_class(order: &str) -> bool {
    matches!(order, "Acquire" | "AcqRel" | "SeqCst")
}

/// One atomic operation site inside a function body.
#[derive(Debug)]
pub(crate) struct AtomOp {
    /// Receiver ident (nearest ident left of the `.op(` chain) — a
    /// field name when the receiver is a field access, otherwise
    /// whatever local it resolved to (which then simply misses the
    /// field table).
    pub field: String,
    pub kind: OpKind,
    /// Ordering arguments in call order (`[success, failure]` for CAS).
    pub orders: Vec<String>,
    /// CFG statement the op sits in.
    pub stmt: usize,
    /// Token index of the op ident, body-slice relative (intra-statement
    /// order).
    pub tok: usize,
    pub line: u32,
}

fn op_kind(name: &str) -> Option<OpKind> {
    if name == "load" {
        return Some(OpKind::Load);
    }
    if name == "store" {
        return Some(OpKind::Store);
    }
    if RMW_OPS.contains(&name) {
        return Some(OpKind::Rmw);
    }
    if matches!(name, "compare_exchange" | "compare_exchange_weak") {
        return Some(OpKind::Cas);
    }
    None
}

/// Nearest ident left of `toks[dot]` (a `.`), hopping back over one
/// balanced `(…)`/`[…]` group: `self.inner.reserve.load` → `reserve`,
/// `storage[i].load` → `storage`.
pub(crate) fn receiver_of(toks: &[Token], dot: usize) -> String {
    if dot == 0 {
        return String::new();
    }
    let mut j = dot - 1;
    let close = toks[j].text.as_str();
    if matches!(close, ")" | "]") {
        let open = if close == ")" { "(" } else { "[" };
        let mut depth = 0usize;
        loop {
            if toks[j].text == close {
                depth += 1;
            } else if toks[j].text == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return String::new();
            }
            j -= 1;
        }
        if j == 0 {
            return String::new();
        }
        j -= 1;
    }
    if toks[j].kind == TokKind::Ident {
        toks[j].text.clone()
    } else {
        String::new()
    }
}

/// Extract every atomic op in a body slice, attributed to CFG
/// statements. `ops` come back sorted by token index.
pub(crate) fn extract_ops(toks: &[Token], cfg: &Cfg) -> Vec<AtomOp> {
    let mut ops = Vec::new();
    for (sid, stmt) in cfg.stmts.iter().enumerate() {
        let (lo, hi) = stmt.range;
        let mut j = lo;
        while j < hi {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                j += 1;
                continue;
            }
            let Some(kind) = op_kind(&t.text) else {
                j += 1;
                continue;
            };
            if j == 0 || toks[j - 1].text != "." || j + 1 >= hi || toks[j + 1].text != "(" {
                j += 1;
                continue;
            }
            // Walk the argument group, collecting Ordering idents in
            // call order (`Ordering::Relaxed` or bare `Relaxed`).
            let mut depth = 0usize;
            let mut orders = Vec::new();
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if toks[k].kind == TokKind::Ident
                            && ORDERINGS.contains(&toks[k].text.as_str())
                        {
                            orders.push(toks[k].text.clone());
                        }
                    }
                }
                k += 1;
            }
            if !orders.is_empty() {
                ops.push(AtomOp {
                    field: receiver_of(toks, j - 1),
                    kind,
                    orders,
                    stmt: sid,
                    tok: j,
                    line: t.line,
                });
            }
            j = k.max(j + 1);
        }
    }
    ops.sort_by_key(|o| o.tok);
    ops
}

/// True when `op` makes a Release-class write (store, RMW, or the
/// success side of a CAS).
fn releases(op: &AtomOp) -> bool {
    match op.kind {
        OpKind::Store | OpKind::Rmw | OpKind::Cas => {
            op.orders.first().is_some_and(|o| is_release_class(o))
        }
        OpKind::Load => false,
    }
}

/// One analysed function: its CFG and atomic ops.
struct FnAtomics<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    info: &'a FnInfo,
    cfg: Cfg,
    ops: Vec<AtomOp>,
}

pub(crate) fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Workspace-wide tables: Atomic*-typed field names, and which of
    // them are Acquire-loaded anywhere.
    let mut atomic_fields: BTreeSet<String> = BTreeSet::new();
    for krate in &ws.crates {
        for file in &krate.files {
            for f in &file.fields {
                if !f.is_test && f.ty.starts_with("Atomic") {
                    atomic_fields.insert(f.name.clone());
                }
            }
        }
    }
    if atomic_fields.is_empty() {
        return;
    }

    let mut fns: Vec<FnAtomics> = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            for info in &file.fns {
                if info.is_test || info.body.0 == info.body.1 {
                    continue;
                }
                let body = &file.lexed.tokens[info.body.0..info.body.1];
                // Cheap prescan before building a CFG.
                if !body
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()))
                {
                    continue;
                }
                let cfg = Cfg::build(body);
                let ops = extract_ops(body, &cfg);
                if ops.is_empty() {
                    continue;
                }
                fns.push(FnAtomics {
                    path: &file.path,
                    lexed: &file.lexed,
                    info,
                    cfg,
                    ops,
                });
            }
        }
    }

    let mut acquire_loaded: BTreeSet<&str> = BTreeSet::new();
    for f in &fns {
        for op in &f.ops {
            if op.kind == OpKind::Load && op.orders.first().is_some_and(|o| is_acquire_class(o)) {
                acquire_loaded.insert(op.field.as_str());
            }
        }
    }

    // Seqlock pairs (A = relaxed-bumped counter, B = release-published
    // flag): writer does `A.store(.., Relaxed)` then, later on some
    // path, `B.store/rmw(.., Release)` with A ≠ B, both atomic fields,
    // A Acquire-loaded somewhere.
    let mut pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for f in &fns {
        for a in &f.ops {
            let relaxed_store = a.kind == OpKind::Store
                && a.orders.first().is_some_and(|o| o == "Relaxed")
                && atomic_fields.contains(&a.field)
                && acquire_loaded.contains(a.field.as_str());
            if !relaxed_store {
                continue;
            }
            let reach = f.cfg.reachable_from(a.stmt);
            for b in &f.ops {
                if b.field != a.field
                    && atomic_fields.contains(&b.field)
                    && releases(b)
                    && ((b.stmt == a.stmt && b.tok > a.tok) || (b.stmt != a.stmt && reach[b.stmt]))
                {
                    pairs.insert((a.field.clone(), b.field.clone()));
                }
            }
        }
    }

    for f in &fns {
        let has_release: Vec<bool> = (0..f.cfg.stmts.len())
            .map(|s| f.ops.iter().any(|o| o.stmt == s && releases(o)))
            .collect();
        let must_release = f.cfg.must_reach(|s| has_release[s]);

        for op in &f.ops {
            // Check 1: relaxed publish must be sealed by a release.
            if op.kind == OpKind::Store
                && op.orders.first().is_some_and(|o| o == "Relaxed")
                && atomic_fields.contains(&op.field)
                && acquire_loaded.contains(op.field.as_str())
            {
                let same_stmt_later = f
                    .ops
                    .iter()
                    .any(|o| o.stmt == op.stmt && o.tok > op.tok && releases(o));
                let all_paths = f.cfg.stmts[op.stmt]
                    .succs
                    .iter()
                    .all(|&t| t < f.cfg.stmts.len() && must_release[t]);
                if !same_stmt_later
                    && !all_paths
                    && !justified(f.lexed, op.line, f.info.item_line, "MRL-A005")
                {
                    findings.push(Finding {
                        rule: "MRL-A005",
                        path: f.path.to_string(),
                        line: op.line,
                        snippet: snippet_of(f.lexed, op.line),
                        fingerprint: 0,
                        message: format!(
                            "`{}` is Acquire-loaded elsewhere, but this Relaxed store can \
                             reach the end of `{}` without a Release-class write on some \
                             path — readers may observe it unordered (`// protocol:` to \
                             justify)",
                            op.field,
                            f.info.qualified(),
                        ),
                    });
                }
            }

            // Check 2: CAS failure ordering stronger than success.
            if op.kind == OpKind::Cas && op.orders.len() >= 2 {
                let (succ, fail) = (&op.orders[0], &op.orders[1]);
                if rank(fail) > rank(succ)
                    && !justified(f.lexed, op.line, f.info.item_line, "MRL-A005")
                {
                    findings.push(Finding {
                        rule: "MRL-A005",
                        path: f.path.to_string(),
                        line: op.line,
                        snippet: snippet_of(f.lexed, op.line),
                        fingerprint: 0,
                        message: format!(
                            "compare_exchange on `{}` uses failure ordering {fail} stronger \
                             than success ordering {succ} — the failed path promises more \
                             than the taken one (`// protocol:` to justify)",
                            op.field,
                        ),
                    });
                }
            }

            // Check 3: seqlock reader must re-read the counter.
            if op.kind == OpKind::Load && op.orders.first().is_some_and(|o| is_acquire_class(o)) {
                let publishes: Vec<&(String, String)> =
                    pairs.iter().filter(|(_, b)| *b == op.field).collect();
                if publishes.is_empty() {
                    continue;
                }
                let reach = f.cfg.reachable_from(op.stmt);
                let is_after = |o: &AtomOp| {
                    (o.stmt == op.stmt && o.tok > op.tok) || (o.stmt != op.stmt && reach[o.stmt])
                };
                let reads_other_data_after = f
                    .ops
                    .iter()
                    .any(|o| o.kind == OpKind::Load && o.field != op.field && is_after(o));
                if !reads_other_data_after {
                    continue;
                }
                let revalidated = publishes.iter().all(|(a, _)| {
                    f.ops
                        .iter()
                        .any(|o| o.kind == OpKind::Load && o.field == *a && is_after(o))
                });
                if !revalidated && !justified(f.lexed, op.line, f.info.item_line, "MRL-A005") {
                    let counters: Vec<&str> = publishes.iter().map(|(a, _)| a.as_str()).collect();
                    findings.push(Finding {
                        rule: "MRL-A005",
                        path: f.path.to_string(),
                        line: op.line,
                        snippet: snippet_of(f.lexed, op.line),
                        fingerprint: 0,
                        message: format!(
                            "seqlock read: `{}` is the publish side of a reserve/publish \
                             pair, but `{}` does not re-read `{}` after its data loads — \
                             torn reads can escape validation (`// protocol:` to justify)",
                            op.field,
                            f.info.qualified(),
                            counters.join("`/`"),
                        ),
                    });
                }
            }
        }
    }
}
