//! Hand-rolled JSON export for findings (the analyzer carries no
//! dependencies, so no serde). Output is deterministic: findings are
//! emitted in the order the rules sorted them.

use crate::rules::Finding;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render findings as a JSON document:
/// `{"total": N, "findings": [{rule, path, line, fingerprint, snippet, message}, …]}`.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape(f.rule, &mut out);
        out.push_str("\", \"path\": \"");
        escape(&f.path, &mut out);
        out.push_str(&format!(
            "\", \"line\": {}, \"fingerprint\": \"{:016x}\", \"snippet\": \"",
            f.line, f.fingerprint
        ));
        escape(&f.snippet, &mut out);
        out.push_str("\", \"message\": \"");
        escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_shapes() {
        let f = Finding {
            rule: "MRL-A001",
            path: "crates/core/src/lib.rs".into(),
            line: 7,
            snippet: "let s = \"a\\b\" ;".into(),
            fingerprint: 0xdead_beef,
            message: "line1\nline2".into(),
        };
        let doc = render(&[f]);
        assert!(doc.contains("\"total\": 1"));
        assert!(doc.contains("\\\"a\\\\b\\\""));
        assert!(doc.contains("line1\\nline2"));
        assert!(doc.contains("00000000deadbeef"));
        assert!(render(&[]).contains("\"findings\": []"));
    }
}
