//! Workspace loading: discover crates, parse every source file, and
//! expose the call graph the rules run over.
//!
//! The analyzer itself and `xtask` are excluded — they are development
//! tooling, not product code, and their sources are full of pattern
//! strings that would read as findings.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::graph::CallGraph;
use crate::manifest::{self, Manifest};
use crate::parser::{parse_file, ParsedFile};

/// Crate directories never analysed.
const EXCLUDED_DIRS: &[&str] = &["xtask", "analyzer"];

/// One workspace crate with its parsed sources.
#[derive(Debug)]
pub struct Crate {
    /// Directory name under `crates/` (or `mrl` for the root package).
    pub dir: String,
    /// Repo-relative path to the crate's Cargo.toml.
    pub manifest_path: String,
    pub manifest: Manifest,
    pub files: Vec<ParsedFile>,
}

/// The loaded workspace.
#[derive(Debug)]
pub struct Workspace {
    pub crates: Vec<Crate>,
    index: BTreeMap<String, (usize, usize)>,
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn load_crate(root: &Path, dir_name: &str, crate_dir: &Path) -> Result<Option<Crate>, String> {
    let manifest_file = crate_dir.join("Cargo.toml");
    let src_dir = crate_dir.join("src");
    if !manifest_file.is_file() || !src_dir.is_dir() {
        return Ok(None);
    }
    let manifest_src = fs::read_to_string(&manifest_file)
        .map_err(|e| format!("read {}: {e}", manifest_file.display()))?;
    let manifest = manifest::parse(&manifest_src);
    let mut paths = Vec::new();
    rs_files(&src_dir, &mut paths)?;
    let mut files = Vec::new();
    for path in paths {
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel_path = rel(root, &path);
        let parsed = parse_file(&rel_path, &src)
            .map_err(|e| format!("{}:{}: {}", e.path, e.line, e.message))?;
        files.push(parsed);
    }
    Ok(Some(Crate {
        dir: dir_name.to_string(),
        manifest_path: rel(root, &manifest_file),
        manifest,
        files,
    }))
}

impl Workspace {
    /// Load every analysable crate under `root` (the repo root): the root
    /// package plus `crates/*`, minus the excluded tooling crates.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut crates = Vec::new();
        if let Some(c) = load_crate(root, "mrl", root)? {
            crates.push(c);
        }
        let crates_dir = root.join("crates");
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if EXCLUDED_DIRS.contains(&name.as_str()) {
                continue;
            }
            if let Some(c) = load_crate(root, &name, &dir)? {
                crates.push(c);
            }
        }
        let mut index = BTreeMap::new();
        for (ci, krate) in crates.iter().enumerate() {
            for (fi, file) in krate.files.iter().enumerate() {
                index.insert(file.path.clone(), (ci, fi));
            }
        }
        Ok(Workspace { crates, index })
    }

    /// Look up a parsed file by repo-relative path.
    pub fn file(&self, path: &str) -> Option<&ParsedFile> {
        let &(ci, fi) = self.index.get(path)?;
        Some(&self.crates[ci].files[fi])
    }

    /// Crate directory name owning a repo-relative path.
    pub fn krate_of(path: &str) -> String {
        match path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            Some(dir) => dir.to_string(),
            None => "mrl".to_string(),
        }
    }

    /// Build the call graph over every loaded file.
    pub fn graph(&self) -> CallGraph {
        CallGraph::build(
            self.crates.iter().flat_map(|c| c.files.iter()),
            Self::krate_of,
        )
    }

    /// Parser recovery events across all files: `(path, line, reason)`.
    /// Non-empty output means the item parser fell back somewhere and
    /// analysis coverage has a hole.
    pub fn recovered(&self) -> Vec<(String, u32, String)> {
        let mut out = Vec::new();
        for krate in &self.crates {
            for file in &krate.files {
                for (line, why) in &file.recovered {
                    out.push((file.path.clone(), *line, why.clone()));
                }
            }
        }
        out
    }
}
