//! Interprocedural summary engine (DESIGN.md §3.16).
//!
//! Condenses the function-level call graph into strongly connected
//! components (iterative Tarjan), then traverses the condensation
//! bottom-up — callees before callers — computing one [`FnSummary`] per
//! function. Inside a non-trivial SCC (mutual recursion) the transitive
//! facts are iterated to a fixpoint; all lattices here are finite unions
//! and booleans, so the loop terminates.
//!
//! Local facts are CFG-aware: a sink or nondeterminism source sitting on
//! a statement no path from the function entry can reach is *discharged*
//! (dead code cannot panic or perturb results), and a panic-family macro
//! whose statement lies on **every** entry→exit path is *must*-executed.
//! Transitive facts (taint kinds, may-panic, unsafe-reach) flow caller ←
//! callee along resolved edges.
//!
//! Over-approximation discipline (same as `cfg.rs` / DESIGN.md §3.11):
//!
//! * Unresolved **dynamic** calls are widened conservatively by name: a
//!   method call named `recv`/`try_recv`/`recv_timeout`/`recv_deadline`
//!   on an unknown receiver is assumed to observe cross-thread completion
//!   order. All other unresolved calls are assumed pure and panic-free —
//!   std never re-enters the workspace (§3.11), so this is the existing
//!   resolution contract, not a new hole.
//! * `must_panic` is intra-procedural only: a call to a must-panicking
//!   callee does not make the caller must-panic. Must-facts therefore
//!   under-approximate, which is the safe direction for the lying-tag
//!   check (MRL-A010) that consumes them.
//! * A `// nondet:`-tagged source site is treated as reviewed: it is
//!   dropped from the summary and does not taint callers.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::facts::{Sink, SinkKind};
use crate::graph::CallGraph;
use crate::lexer::{Lexed, TokKind, Token};

/// A modelled nondeterminism source kind (MRL-A008).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// Unseeded RNG construction (`from_entropy`, `thread_rng`).
    UnseededRng,
    /// Iteration over a `HashMap`/`HashSet` (randomized hash order).
    HashIter,
    /// Wall-clock / TSC read (`Instant::now`, `SystemTime::now`, rdtsc).
    TimeRead,
    /// Cross-thread receive — completion order depends on scheduling.
    RecvOrder,
}

impl SourceKind {
    pub fn describe(self) -> &'static str {
        match self {
            SourceKind::UnseededRng => "unseeded RNG construction",
            SourceKind::HashIter => "hash-order iteration",
            SourceKind::TimeRead => "time/TSC read",
            SourceKind::RecvOrder => "cross-thread recv completion order",
        }
    }
}

/// One nondeterminism source site inside a function body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    pub kind: SourceKind,
    pub line: u32,
    /// Display form of what fired (`from_entropy`, `.keys`, …).
    pub what: String,
}

/// One `unsafe` block inside a function body.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
}

/// Per-function summary: CFG-filtered local facts plus the transitive
/// facts computed by the bottom-up SCC fixpoint.
#[derive(Debug, Default)]
pub struct FnSummary {
    /// Sinks on statements reachable from the function entry.
    pub live_sinks: Vec<Sink>,
    /// Sinks the CFG filter discharged (no entry-reachable statement).
    pub dead_sinks: usize,
    /// Lines of panic-family macros every entry→exit path executes.
    pub must_panic_lines: BTreeSet<u32>,
    /// Every path from entry hits a panic-family macro locally.
    pub must_panic: bool,
    /// Local nondeterminism sources on live statements, minus the
    /// `// nondet:`-reviewed ones.
    pub sources: Vec<SourceSite>,
    /// Local `unsafe` blocks (lexical containment — not CFG-filtered:
    /// dead unsafe code still needs a contract).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Declared `unsafe fn`.
    pub unsafe_fn: bool,
    /// Transitive: union of source kinds reaching this fn's results.
    pub taint: BTreeSet<SourceKind>,
    /// Transitive: some path through this fn may panic.
    pub may_panic: bool,
    /// Transitive: this fn contains or calls into `unsafe` code.
    pub unsafe_reach: bool,
}

/// Workspace summaries, indexed parallel to `CallGraph::fns`.
#[derive(Debug, Default)]
pub struct Summaries {
    pub fns: Vec<FnSummary>,
    /// SCCs in bottom-up (callee-first) order; singletons included.
    pub sccs: Vec<Vec<usize>>,
}

impl Summaries {
    /// Direct callers of `callee` (reverse edge scan).
    pub fn callers_of(graph: &CallGraph, callee: usize) -> Vec<usize> {
        (0..graph.fns.len())
            .filter(|&i| graph.edges[i].contains(&callee))
            .collect()
    }
}

/// Method names widened to [`SourceKind::RecvOrder`] when the receiver
/// cannot be resolved (it never can — channel endpoints are std types).
const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout", "recv_deadline"];

/// Method names that iterate a collection; combined with a `HashMap`/
/// `HashSet` mention in the same body they mark hash-order iteration.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// RNG constructors that ignore the seed plumbing.
const UNSEEDED_RNG: &[&str] = &["from_entropy", "thread_rng"];

/// Compute summaries for every function in `graph`. `lexed` maps a
/// workspace-relative path to its lexed file (for tag lookup), and
/// `nondet_reviewed` reports whether a source site carries a reviewed
/// `// nondet:` justification (those are dropped before propagation).
pub fn compute<'a>(
    graph: &CallGraph,
    lexed: impl Fn(&str) -> &'a Lexed,
    nondet_reviewed: impl Fn(&Lexed, u32, u32) -> bool,
) -> Summaries {
    let n = graph.fns.len();
    let mut fns: Vec<FnSummary> = Vec::with_capacity(n);
    for f in &graph.fns {
        let file = lexed(&f.path);
        let sig_hash = signature_mentions_hash(file, f.info.body.0, f.info.line);
        let mut s = local_summary(file, f.info.body, &f.facts.sinks, sig_hash);
        s.unsafe_fn = is_unsafe_fn(file, f.info.body.0, f.info.line);
        s.sources
            .retain(|site| !nondet_reviewed(file, site.line, f.info.item_line));
        fns.push(s);
    }

    let sccs = tarjan_sccs(&graph.edges);

    // Bottom-up propagation: Tarjan emits an SCC only after everything
    // it calls into, so callee summaries are final when we union them.
    for scc in &sccs {
        loop {
            let mut changed = false;
            for &i in scc {
                let mut taint: BTreeSet<SourceKind> =
                    fns[i].sources.iter().map(|s| s.kind).collect();
                let mut may_panic = !fns[i].live_sinks.is_empty();
                let mut unsafe_reach = !fns[i].unsafe_sites.is_empty() || fns[i].unsafe_fn;
                for &j in &graph.edges[i] {
                    taint.extend(fns[j].taint.iter().copied());
                    may_panic |= fns[j].may_panic;
                    unsafe_reach |= fns[j].unsafe_reach;
                }
                if taint != fns[i].taint
                    || may_panic != fns[i].may_panic
                    || unsafe_reach != fns[i].unsafe_reach
                {
                    fns[i].taint = taint;
                    fns[i].may_panic = may_panic;
                    fns[i].unsafe_reach = unsafe_reach;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    Summaries { fns, sccs }
}

/// CFG-filtered local facts for one body. `sig_hash` marks a
/// `HashMap`/`HashSet` mention in the function signature (parameters and
/// return type live outside the body slice).
fn local_summary(file: &Lexed, body: (usize, usize), sinks: &[Sink], sig_hash: bool) -> FnSummary {
    let mut s = FnSummary::default();
    if body.0 == body.1 {
        return s;
    }
    let toks = &file.tokens[body.0..body.1];
    let cfg = Cfg::build(toks);
    if cfg.stmts.is_empty() {
        s.live_sinks = sinks.to_vec();
        s.sources = scan_sources(toks, sig_hash);
        s.unsafe_sites = scan_unsafe(toks);
        return s;
    }

    // Statement entry is always node 0 (nodes are allocated in source
    // order and the first statement is built first).
    let entry = 0usize;
    let reach = cfg.reachable_from(entry);
    let live_stmt = |i: usize| i == entry || reach[i];

    // Line coverage per statement; a site on a line no statement claims
    // (brace-only lines, headers split oddly) stays conservatively live.
    let mut stmt_lines: Vec<BTreeSet<u32>> = Vec::with_capacity(cfg.stmts.len());
    let mut all_lines: BTreeSet<u32> = BTreeSet::new();
    let mut live_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, stmt) in cfg.stmts.iter().enumerate() {
        let lines: BTreeSet<u32> = toks[stmt.range.0..stmt.range.1]
            .iter()
            .map(|t| t.line)
            .collect();
        all_lines.extend(lines.iter().copied());
        if live_stmt(i) {
            live_lines.extend(lines.iter().copied());
        }
        stmt_lines.push(lines);
    }
    let is_live_line = |line: u32| live_lines.contains(&line) || !all_lines.contains(&line);

    for sink in sinks {
        if is_live_line(sink.line) {
            s.live_sinks.push(sink.clone());
        } else {
            s.dead_sinks += 1;
        }
    }

    // Must-execution, per live panic-macro sink and for the whole fn.
    let panic_stmt = |i: usize, line: u32| {
        stmt_lines[i].contains(&line)
            && toks[cfg.stmts[i].range.0..cfg.stmts[i].range.1]
                .iter()
                .any(|t| t.line == line && is_panic_macro(t))
    };
    for sink in &s.live_sinks {
        if sink.kind != SinkKind::PanicMacro {
            continue;
        }
        let must = cfg.must_reach(|i| panic_stmt(i, sink.line));
        if must[entry] {
            s.must_panic_lines.insert(sink.line);
        }
    }
    let any_panic_line: BTreeSet<u32> = s
        .live_sinks
        .iter()
        .filter(|k| k.kind == SinkKind::PanicMacro)
        .map(|k| k.line)
        .collect();
    if !any_panic_line.is_empty() {
        let must = cfg.must_reach(|i| any_panic_line.iter().any(|&l| panic_stmt(i, l)));
        s.must_panic = must[entry];
    }

    s.sources = scan_sources(toks, sig_hash)
        .into_iter()
        .filter(|site| is_live_line(site.line))
        .collect();
    s.unsafe_sites = scan_unsafe(toks);
    s
}

fn is_panic_macro(t: &Token) -> bool {
    t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        )
}

/// Token-level nondeterminism source scan over one body slice.
fn scan_sources(toks: &[Token], sig_hash: bool) -> Vec<SourceSite> {
    let mut out = Vec::new();
    let mentions_hash = sig_hash
        || toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"));
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let name = t.text.as_str();
        if UNSEEDED_RNG.contains(&name) {
            out.push(SourceSite {
                kind: SourceKind::UnseededRng,
                line: t.line,
                what: name.to_string(),
            });
        } else if name == "now"
            && prev == Some("::")
            && matches!(prev2, Some("Instant") | Some("SystemTime"))
        {
            out.push(SourceSite {
                kind: SourceKind::TimeRead,
                line: t.line,
                what: format!("{}::now", prev2.unwrap_or_default()),
            });
        } else if name == "_rdtsc" {
            out.push(SourceSite {
                kind: SourceKind::TimeRead,
                line: t.line,
                what: "_rdtsc".to_string(),
            });
        } else if prev == Some(".") && next == Some("(") && RECV_METHODS.contains(&name) {
            // Widened dynamic call: the receiver is a std channel
            // endpoint the resolver never sees into.
            out.push(SourceSite {
                kind: SourceKind::RecvOrder,
                line: t.line,
                what: format!(".{name}"),
            });
        } else if mentions_hash
            && prev == Some(".")
            && next == Some("(")
            && ITER_METHODS.contains(&name)
        {
            out.push(SourceSite {
                kind: SourceKind::HashIter,
                line: t.line,
                what: format!(".{name}"),
            });
        }
    }
    out
}

/// `unsafe { … }` blocks inside one body slice.
fn scan_unsafe(toks: &[Token]) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "unsafe"
            && toks.get(i + 1).is_some_and(|n| n.text == "{")
        {
            out.push(UnsafeSite { line: t.line });
        }
    }
    out
}

/// Does the signature of the fn whose body starts at file-token index
/// `body_lo` mention a hash collection? Walks back to the `fn` keyword
/// on the declaration line, scanning the parameter/return tokens.
fn signature_mentions_hash(file: &Lexed, body_lo: usize, fn_line: u32) -> bool {
    let mut j = body_lo;
    let mut seen_hash = false;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[j];
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            seen_hash = true;
        }
        if t.kind == TokKind::Ident && t.text == "fn" && t.line == fn_line {
            return seen_hash;
        }
        if t.line + 64 < fn_line {
            break; // runaway scan — give up conservatively
        }
    }
    false
}

/// Is the fn whose body starts at file-token index `body_lo` declared
/// `unsafe fn`? Walks back to the `fn` keyword on the declaration line
/// and checks the qualifier before it (skipping an `extern "ABI"`).
fn is_unsafe_fn(file: &Lexed, body_lo: usize, fn_line: u32) -> bool {
    let mut j = body_lo;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[j];
        if t.kind == TokKind::Ident && t.text == "fn" && t.line == fn_line {
            let mut k = j;
            while k > 0 {
                k -= 1;
                let q = &file.tokens[k];
                if q.kind == TokKind::Str || (q.kind == TokKind::Ident && q.text == "extern") {
                    continue;
                }
                return q.kind == TokKind::Ident && q.text == "unsafe";
            }
            return false;
        }
        if t.line < fn_line.saturating_sub(4) {
            break; // signature scan overshot — not this fn's tokens
        }
    }
    false
}

/// Iterative Tarjan SCC over an adjacency list; SCCs are emitted in
/// reverse-topological (callee-first) order of the condensation.
fn tarjan_sccs(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, next-edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if let Some(&w) = edges[v].get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::parser::{parse_file, ParsedFile};

    fn setup(src: &str) -> (ParsedFile, CallGraph) {
        let parsed = parse_file("crates/demo/src/lib.rs", src).unwrap();
        let graph = CallGraph::build(std::iter::once(&parsed), |_| "demo".to_string());
        (parsed, graph)
    }

    fn summaries(parsed: &ParsedFile, graph: &CallGraph) -> Summaries {
        compute(graph, |_| &parsed.lexed, |_, _, _| false)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.find(|f| f.info.name == name)[0]
    }

    #[test]
    fn sccs_come_out_callee_first() {
        let (p, g) = setup("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let s = summaries(&p, &g);
        let pos = |name: &str| {
            let i = idx(&g, name);
            s.sccs.iter().position(|scc| scc.contains(&i)).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn mutual_recursion_forms_one_scc_and_fixpoints() {
        let (p, g) = setup(
            "fn a(n: u64) { if n > 0 { b(n); } }\n\
             fn b(n: u64) { let x = rx.recv();\nlet _ = x; a(n - 1); }\n",
        );
        let s = summaries(&p, &g);
        let (a, b) = (idx(&g, "a"), idx(&g, "b"));
        let scc = s.sccs.iter().find(|scc| scc.contains(&a)).unwrap();
        assert!(scc.contains(&b), "a and b are mutually recursive: {scc:?}");
        assert!(s.fns[a].taint.contains(&SourceKind::RecvOrder));
        assert!(s.fns[b].taint.contains(&SourceKind::RecvOrder));
    }

    #[test]
    fn taint_flows_caller_from_callee() {
        let (p, g) = setup(
            "fn root() { helper(); }\n\
             fn helper() { let r = SmallRng::from_entropy();\nlet _ = r; }\n\
             fn clean() { let x = 1;\nlet _ = x; }\n",
        );
        let s = summaries(&p, &g);
        assert!(s.fns[idx(&g, "root")]
            .taint
            .contains(&SourceKind::UnseededRng));
        assert!(s.fns[idx(&g, "clean")].taint.is_empty());
        assert!(
            s.fns[idx(&g, "root")].sources.is_empty(),
            "site is local to helper"
        );
    }

    #[test]
    fn hash_iteration_needs_a_hash_collection_in_scope() {
        let (p, g) = setup(
            "fn hashy(m: &HashMap<u32, u32>) { for k in m.keys() { use_it(k); } }\n\
             fn listy(v: &Vec<u32>) { for k in v.iter() { use_it(k); } }\n\
             fn use_it(_k: &u32) {}\n",
        );
        let s = summaries(&p, &g);
        assert_eq!(s.fns[idx(&g, "hashy")].sources.len(), 1);
        assert_eq!(
            s.fns[idx(&g, "hashy")].sources[0].kind,
            SourceKind::HashIter
        );
        assert!(s.fns[idx(&g, "listy")].sources.is_empty());
    }

    #[test]
    fn time_reads_detected_qualified_only() {
        let (p, g) = setup(
            "fn stamp() -> u64 { let t = Instant::now();\nelapsed(t) }\n\
             fn decoy_now() { let now = 3;\nlet _ = now; }\n",
        );
        let s = summaries(&p, &g);
        assert_eq!(s.fns[idx(&g, "stamp")].sources.len(), 1);
        assert_eq!(
            s.fns[idx(&g, "stamp")].sources[0].kind,
            SourceKind::TimeRead
        );
        assert!(s.fns[idx(&g, "decoy_now")].sources.is_empty());
    }

    #[test]
    fn dead_code_sinks_are_discharged() {
        let (p, g) = setup(
            "fn f(v: &[u64]) -> u64 {\n\
             return 0;\n\
             let x = v[9];\n\
             x\n\
             }\n",
        );
        let s = summaries(&p, &g);
        let f = &s.fns[idx(&g, "f")];
        assert_eq!(f.dead_sinks, 1, "index after return is dead: {f:?}");
        assert!(f.live_sinks.is_empty());
        assert!(!f.may_panic);
    }

    #[test]
    fn must_panic_requires_every_path() {
        let (p, g) = setup(
            "fn always() { panic!(\"no\"); }\n\
             fn maybe(c: bool) { if c {\npanic!(\"no\");\n} }\n",
        );
        let s = summaries(&p, &g);
        assert!(s.fns[idx(&g, "always")].must_panic);
        assert!(!s.fns[idx(&g, "always")].must_panic_lines.is_empty());
        assert!(!s.fns[idx(&g, "maybe")].must_panic);
        assert!(s.fns[idx(&g, "maybe")].may_panic);
    }

    #[test]
    fn may_panic_is_interprocedural_must_is_not() {
        let (p, g) = setup(
            "fn outer() { inner(); }\n\
             fn inner() { panic!(\"no\"); }\n",
        );
        let s = summaries(&p, &g);
        assert!(s.fns[idx(&g, "outer")].may_panic);
        assert!(!s.fns[idx(&g, "outer")].must_panic, "must stays local");
    }

    #[test]
    fn unsafe_blocks_and_fns_propagate_reach() {
        let (p, g) = setup(
            "fn caller() { spooky(); tick(); }\n\
             fn spooky() { unsafe { core::arch::x86_64::_rdtsc() }; }\n\
             unsafe fn raw() {}\n\
             fn tick() { let x = 1;\nlet _ = x; }\n",
        );
        let s = summaries(&p, &g);
        assert_eq!(s.fns[idx(&g, "spooky")].unsafe_sites.len(), 1);
        assert!(s.fns[idx(&g, "raw")].unsafe_fn);
        assert!(s.fns[idx(&g, "caller")].unsafe_reach);
        assert!(!s.fns[idx(&g, "tick")].unsafe_reach);
    }

    #[test]
    fn reviewed_sources_do_not_taint() {
        let parsed = parse_file(
            "crates/demo/src/lib.rs",
            "fn root() { helper(); }\n\
             fn helper() {\n\
             // nondet: reviewed — order does not affect results\n\
             let x = rx.try_recv();\nlet _ = x; }\n",
        )
        .unwrap();
        let graph = CallGraph::build(std::iter::once(&parsed), |_| "demo".to_string());
        let s = compute(
            &graph,
            |_| &parsed.lexed,
            |lexed, line, item_line| crate::rules::justified(lexed, line, item_line, "MRL-A008"),
        );
        let helper = idx(&graph, "helper");
        assert!(s.fns[helper].sources.is_empty(), "reviewed site dropped");
        assert!(s.fns[idx(&graph, "root")].taint.is_empty());
    }
}
