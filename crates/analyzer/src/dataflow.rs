//! MRL-A007 — accounting-dataflow pass.
//!
//! Upgrades MRL-A002's identifier pattern-matching with a CFG-based
//! taint walk over the conservation-critical paths: functions named
//! `*seal*`, `*collapse*`, `*shipment*`, or `*absorb*` in the
//! accounting crates. A `let`-binding whose right-hand side reads an
//! accounting identifier (weight, mass, total_n, …) captures mass that
//! belonged to a consumed buffer; the binding must be *used* again on
//! **every** CFG path to exit — reaching a credit, a return value, or
//! an assertion — or the mass silently leaks on the paths that skip it.
//!
//! Deliberate approximations (DESIGN.md §3.15): bindings are tracked by
//! name (shadowing counts as a use), `_`-prefixed names are explicit
//! discards and exempt, and any later mention of the name counts — the
//! pass proves "not dropped", not "credited to the right ledger".
//! Suppression: `// arith:` on the binding line or the enclosing fn.

use crate::cfg::Cfg;
use crate::lexer::TokKind;
use crate::rules::{justified, snippet_of, Finding, ACCOUNTING_IDENTS};
use crate::workspace::Workspace;

/// Crates whose seal/collapse/shipment paths carry conservation
/// obligations.
const SCOPE_CRATES: &[&str] = &["core", "framework", "parallel"];

/// Function-name substrings that mark a conservation-critical path.
const SCOPE_FNS: &[&str] = &["seal", "collapse", "shipment", "absorb"];

pub(crate) fn check(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if !SCOPE_CRATES.contains(&krate.dir.as_str()) {
            continue;
        }
        for file in &krate.files {
            for info in &file.fns {
                if info.is_test
                    || info.body.0 == info.body.1
                    || !SCOPE_FNS.iter().any(|s| info.name.contains(s))
                {
                    continue;
                }
                let toks = &file.lexed.tokens[info.body.0..info.body.1];
                let cfg = Cfg::build(toks);
                for (d, stmt) in cfg.stmts.iter().enumerate() {
                    let (lo, hi) = stmt.range;
                    // `let [mut] name [: ty] = rhs ;`
                    if !(toks[lo].kind == TokKind::Ident && toks[lo].text == "let") {
                        continue;
                    }
                    let mut i = lo + 1;
                    if i < hi && toks[i].text == "mut" {
                        i += 1;
                    }
                    if i >= hi || toks[i].kind != TokKind::Ident {
                        continue; // destructuring pattern — not tracked
                    }
                    let name = toks[i].text.clone();
                    if name.starts_with('_') {
                        continue; // explicit discard
                    }
                    let mut eq = None;
                    let mut depth = 0usize;
                    for (j, tok) in toks.iter().enumerate().take(hi).skip(i + 1) {
                        match tok.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            "=" if depth == 0 => {
                                eq = Some(j);
                                break;
                            }
                            _ => {}
                        }
                    }
                    let Some(eq) = eq else { continue };
                    let read: Vec<&str> = toks[eq + 1..hi]
                        .iter()
                        .filter(|t| {
                            t.kind == TokKind::Ident && ACCOUNTING_IDENTS.contains(&t.text.as_str())
                        })
                        .map(|t| t.text.as_str())
                        .collect();
                    if read.is_empty() {
                        continue;
                    }

                    let uses: Vec<bool> = (0..cfg.stmts.len())
                        .map(|s| {
                            s != d && {
                                let (slo, shi) = cfg.stmts[s].range;
                                toks[slo..shi]
                                    .iter()
                                    .any(|t| t.kind == TokKind::Ident && t.text == name)
                            }
                        })
                        .collect();
                    let must_use = cfg.must_reach(|s| uses[s]);
                    let conserved = cfg.stmts[d]
                        .succs
                        .iter()
                        .all(|&t| t < cfg.stmts.len() && must_use[t]);
                    if conserved || justified(&file.lexed, stmt.line, info.item_line, "MRL-A007") {
                        continue;
                    }
                    let mut read = read;
                    read.sort_unstable();
                    read.dedup();
                    findings.push(Finding {
                        rule: "MRL-A007",
                        path: file.path.clone(),
                        line: stmt.line,
                        snippet: snippet_of(&file.lexed, stmt.line),
                        fingerprint: 0,
                        message: format!(
                            "`{name}` captures accounting state (`{}`) on the `{}` path \
                             but is dropped on some path to exit — consumed mass must \
                             reach a credit on every path (`// arith:` to justify)",
                            read.join("`, `"),
                            info.qualified(),
                        ),
                    });
                }
            }
        }
    }
}
