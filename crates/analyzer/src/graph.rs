//! Workspace-wide function index and call graph.
//!
//! Resolution is a deliberate over-approximation (see DESIGN.md §3.11):
//! a method call `x.f(…)` may dispatch to any workspace method named `f`,
//! because the analyzer does not type-check receivers. A plain call
//! `f(…)` resolves only to free functions named `f`, and a qualified call
//! `T::f(…)` resolves by the qualifying segment: `Self` maps to the
//! enclosing impl's type, a capitalised segment matches workspace types
//! by name, and an unknown type (e.g. `Vec`, `BinaryHeap`) resolves to no
//! edge — std never re-enters the workspace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::facts::{BodyFacts, CallKind};
use crate::parser::{FnInfo, ParsedFile};

/// A function in the workspace index.
#[derive(Debug)]
pub struct FnNode {
    pub info: FnInfo,
    /// Crate directory name under `crates/` (e.g. `core`, `framework`).
    pub krate: String,
    /// Repo-relative source path.
    pub path: String,
    pub facts: BodyFacts,
}

impl FnNode {
    /// `crate::Type::name`-style display label.
    pub fn label(&self) -> String {
        format!("{}::{}", self.krate, self.info.qualified())
    }
}

/// The workspace call graph: an index of every function plus resolved
/// call edges between them.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Adjacency: caller index → callee indices (deduplicated, ordered).
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from parsed files. `krate_of` maps a file path to
    /// its crate directory name.
    pub fn build<'a>(
        files: impl IntoIterator<Item = &'a ParsedFile>,
        krate_of: impl Fn(&str) -> String,
    ) -> Self {
        let mut fns = Vec::new();
        for file in files {
            for info in &file.fns {
                let body = &file.lexed.tokens[info.body.0..info.body.1];
                fns.push(FnNode {
                    info: info.clone(),
                    krate: krate_of(&file.path),
                    path: file.path.clone(),
                    facts: crate::facts::scan(body),
                });
            }
        }

        // Name indices over non-test functions (test helpers never sit on
        // a production path; keeping them out avoids phantom edges from
        // production code into test modules).
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut types: BTreeSet<&str> = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            if f.info.is_test {
                continue;
            }
            match &f.info.self_ty {
                Some(ty) => {
                    methods.entry(&f.info.name).or_default().push(i);
                    typed.entry((ty, &f.info.name)).or_default().push(i);
                    types.insert(ty);
                }
                None => free.entry(&f.info.name).or_default().push(i),
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.facts.calls {
                let name = call.name.as_str();
                match &call.kind {
                    CallKind::Method => {
                        if let Some(v) = methods.get(name) {
                            out.extend(v.iter().copied());
                        }
                    }
                    CallKind::Plain => {
                        if let Some(v) = free.get(name) {
                            out.extend(v.iter().copied());
                        }
                    }
                    CallKind::Path(seg) => {
                        let seg = seg.as_deref();
                        let ty = match seg {
                            Some("Self") => f.info.self_ty.as_deref(),
                            other => other,
                        };
                        match ty {
                            Some(ty) if types.contains(ty) => {
                                if let Some(v) = typed.get(&(ty, name)) {
                                    out.extend(v.iter().copied());
                                }
                            }
                            Some(ty) if ty.chars().next().is_some_and(char::is_uppercase) => {
                                // Known-looking type that isn't in the
                                // workspace (Vec, Option, …): no edge.
                            }
                            _ => {
                                // Module-qualified (`merge::helper`) or
                                // unresolvable: match free functions.
                                if let Some(v) = free.get(name) {
                                    out.extend(v.iter().copied());
                                }
                            }
                        }
                    }
                    CallKind::Macro => {}
                }
            }
            out.remove(&i); // self-loops add nothing to reachability
            edges[i] = out.into_iter().collect();
        }

        CallGraph { fns, edges }
    }

    /// Indices of functions matching `pred`.
    pub fn find(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i]))
            .collect()
    }

    /// BFS from `roots`; returns for every reachable function index the
    /// shortest call trace `root → … → fn` as a list of indices.
    pub fn reach(&self, roots: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut trace: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = trace.entry(r) {
                e.insert(vec![r]);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            let base = trace[&i].clone();
            for &j in &self.edges[i] {
                if let std::collections::btree_map::Entry::Vacant(e) = trace.entry(j) {
                    let mut t = base.clone();
                    t.push(j);
                    e.insert(t);
                    queue.push_back(j);
                }
            }
        }
        trace
    }

    /// Render a trace as `crate::A::f → crate::B::g`.
    pub fn render_trace(&self, trace: &[usize]) -> String {
        trace
            .iter()
            .map(|&i| self.fns[i].label())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(src: &str) -> CallGraph {
        let parsed = parse_file("crates/demo/src/lib.rs", src).unwrap();
        CallGraph::build(&[parsed], |_| "demo".to_string())
    }

    fn idx(g: &CallGraph, q: &str) -> usize {
        g.find(|f| f.info.qualified() == q)[0]
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let g = graph(
            "struct A; struct B;\n\
             impl A { fn go(&self) { self.x.step(); } }\n\
             impl B { fn step(&self) {} }\n",
        );
        let go = idx(&g, "A::go");
        let step = idx(&g, "B::step");
        assert!(g.edges[go].contains(&step));
    }

    #[test]
    fn plain_calls_resolve_to_free_fns_only() {
        let g = graph(
            "fn helper() {}\n\
             struct A;\n\
             impl A { fn helper(&self) {} fn go(&self) { helper(); } }\n",
        );
        let go = idx(&g, "A::go");
        let free = g.find(|f| f.info.self_ty.is_none() && f.info.name == "helper")[0];
        let method = idx(&g, "A::helper");
        assert!(g.edges[go].contains(&free));
        assert!(!g.edges[go].contains(&method));
    }

    #[test]
    fn self_paths_resolve_to_impl_type() {
        let g = graph(
            "struct A;\n\
             impl A { fn new() -> A { A } fn go(&self) { let _ = Self::new(); } }\n",
        );
        let go = idx(&g, "A::go");
        let new = idx(&g, "A::new");
        assert!(g.edges[go].contains(&new));
    }

    #[test]
    fn unknown_types_resolve_to_nothing() {
        let g = graph(
            "fn new() {}\n\
             fn go() { let _v: Vec<u8> = Vec::new(); }\n",
        );
        let go = g.find(|f| f.info.name == "go")[0];
        assert!(
            g.edges[go].is_empty(),
            "Vec::new must not hit the free fn `new`"
        );
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let g = graph(
            "fn helper() {}\n\
             #[cfg(test)] mod tests { pub fn helper() {} }\n\
             fn go() { helper(); }\n",
        );
        let go = g.find(|f| f.info.name == "go")[0];
        let targets = &g.edges[go];
        assert_eq!(targets.len(), 1);
        assert!(!g.fns[targets[0]].info.is_test);
    }

    #[test]
    fn reachability_traces_are_shortest() {
        let g = graph("fn a() { b(); } fn b() { c(); } fn c() {} fn d() { c(); }\n");
        let a = g.find(|f| f.info.name == "a")[0];
        let c = g.find(|f| f.info.name == "c")[0];
        let reach = g.reach(&[a]);
        assert_eq!(reach[&c].len(), 3);
        assert!(g
            .render_trace(&reach[&c])
            .contains("demo::a → demo::b → demo::c"));
    }
}
