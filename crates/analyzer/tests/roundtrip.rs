//! Parser round-trip over every `.rs` file in the repository.
//!
//! Two properties per file:
//!
//! 1. **No recovery fallback** — the item parser understands every item
//!    in the workspace; `ParsedFile::recovered` stays empty. If this
//!    fires after adding new syntax, teach the parser the construct
//!    instead of letting analysis silently skip it.
//! 2. **Lex fixpoint** — re-rendering the token stream (texts joined by
//!    single spaces) and lexing it again yields an identical token
//!    sequence. This catches lexer bugs where token boundaries depend on
//!    the original whitespace (glued suffixes, maximal munch, literal
//!    edge cases).

use std::fs;
use std::path::{Path, PathBuf};

use analyzer::lexer::lex;
use analyzer::parser::parse_file;

fn repo_root() -> PathBuf {
    // crates/analyzer → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn workspace_sources() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = Vec::new();
    collect(&root.join("crates"), &mut files);
    collect(&root.join("src"), &mut files);
    collect(&root.join("tests"), &mut files);
    collect(&root.join("examples"), &mut files);
    assert!(
        files.len() > 50,
        "expected the whole workspace, found {} files",
        files.len()
    );
    files
}

#[test]
fn every_file_parses_without_recovery() {
    let mut failures = Vec::new();
    let mut fns = 0usize;
    for path in workspace_sources() {
        let src = fs::read_to_string(&path).unwrap();
        let rel = path.display().to_string();
        match parse_file(&rel, &src) {
            Ok(parsed) => {
                fns += parsed.fns.len();
                for (line, why) in &parsed.recovered {
                    failures.push(format!("{rel}:{line}: parser recovery: {why}"));
                }
            }
            Err(e) => failures.push(format!("{rel}:{}: {}", e.line, e.message)),
        }
    }
    assert!(
        failures.is_empty(),
        "parser fell back on {} site(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(fns > 300, "expected hundreds of functions, found {fns}");
}

#[test]
fn lex_render_lex_is_a_fixpoint() {
    for path in workspace_sources() {
        let src = fs::read_to_string(&path).unwrap();
        let rel = path.display().to_string();
        let first = lex(&src).unwrap_or_else(|e| panic!("{rel}:{}: {}", e.line, e.message));
        let rendered: String = first
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let second =
            lex(&rendered).unwrap_or_else(|e| panic!("{rel} re-lex:{}: {}", e.line, e.message));
        assert_eq!(
            first.tokens.len(),
            second.tokens.len(),
            "{rel}: token count changed after re-render"
        );
        for (a, b) in first.tokens.iter().zip(second.tokens.iter()) {
            assert_eq!(
                (a.kind, &a.text),
                (b.kind, &b.text),
                "{rel}: token drift at line {}",
                a.line
            );
        }
    }
}

#[test]
fn module_map_assigns_every_fn_a_crate() {
    let ws = analyzer::Workspace::load(&repo_root()).expect("workspace loads");
    let graph = ws.graph();
    assert!(
        graph.fns.len() > 300,
        "graph too small: {}",
        graph.fns.len()
    );
    for f in &graph.fns {
        assert!(!f.krate.is_empty(), "{} has no crate", f.path);
        assert!(
            !f.label().is_empty() && f.label().contains("::"),
            "bad label for fn in {}",
            f.path
        );
    }
    // Spot-check: the framework engine's ingest entry points exist and
    // sit on the expected type.
    let inserts =
        graph.find(|f| f.krate == "framework" && f.info.name == "insert_batch" && !f.info.is_test);
    assert!(!inserts.is_empty(), "framework insert_batch not indexed");
}
