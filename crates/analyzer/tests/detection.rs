//! Detection tests over the seeded-violation fixture in
//! `tests/fixture/`: every rule must fire on its true positives and stay
//! silent on the decoys and tag-suppressed twins.

use std::path::PathBuf;

use analyzer::{analyze, Finding, Workspace};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixture")
}

fn findings() -> Vec<Finding> {
    let ws = Workspace::load(&fixture_root()).expect("fixture loads");
    assert!(
        ws.recovered().is_empty(),
        "fixture must parse without recovery: {:?}",
        ws.recovered()
    );
    analyze(&ws)
}

fn by_rule<'a>(all: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    all.iter().filter(|f| f.rule == rule).collect()
}

fn has(all: &[Finding], rule: &str, path_end: &str, snippet_part: &str) -> bool {
    all.iter()
        .any(|f| f.rule == rule && f.path.ends_with(path_end) && f.snippet.contains(snippet_part))
}

#[test]
fn panic_reachability_fires_and_traces() {
    let all = findings();
    let a001 = by_rule(&all, "MRL-A001");
    // True positives: two sinks in `unguarded` (expect + index), the
    // unwrap at the end of the offer → Helper::make path-call hop, and
    // the unwrap under the `finish` root.
    assert!(has(&all, "MRL-A001", "core/src/sink.rs", "expect"));
    assert!(has(&all, "MRL-A001", "core/src/sink.rs", "values [ 0 ]"));
    assert!(has(
        &all,
        "MRL-A001",
        "framework/src/lib.rs",
        "v . unwrap ( )"
    ));
    assert!(has(
        &all,
        "MRL-A001",
        "framework/src/lib.rs",
        "out . last ( )"
    ));
    assert_eq!(a001.len(), 4, "unexpected A001 set: {a001:#?}");
    // The cross-file trace names both ends.
    let traced = a001
        .iter()
        .find(|f| f.path.ends_with("core/src/sink.rs") && f.snippet.contains("expect"))
        .expect("trace finding");
    assert!(
        traced.message.contains("core::Sketch::insert"),
        "trace must start at the hot root: {}",
        traced.message
    );
    // Decoys: unreachable helper, test-only sinks, and the tagged twin.
    assert!(!a001.iter().any(|f| f.message.contains("orphan_helper")));
    assert!(!a001.iter().any(|f| f.snippet.contains("unwrap_or")));
    assert!(
        !a001
            .iter()
            .any(|f| f.line >= 13 && f.line <= 17 && f.path.ends_with("sink.rs")),
        "tag-suppressed guarded() must stay silent"
    );
}

#[test]
fn arithmetic_safety_fires_on_accounting_operators_only() {
    let all = findings();
    let a002 = by_rule(&all, "MRL-A002");
    assert!(has(&all, "MRL-A002", "core/src/lib.rs", "count += 1"));
    assert!(has(&all, "MRL-A002", "core/src/sink.rs", "weight * 2"));
    assert!(has(
        &all,
        "MRL-A002",
        "framework/src/lib.rs",
        "total_n << 1"
    ));
    assert_eq!(a002.len(), 3, "unexpected A002 set: {a002:#?}");
    // Decoys: the `// arith:`-tagged twin, float arithmetic, and
    // non-accounting identifiers.
    assert!(!a002.iter().any(|f| f.snippet.contains("seen += 1")));
    assert!(!a002.iter().any(|f| f.snippet.contains("2.0")));
    assert!(!a002.iter().any(|f| f.snippet.contains("x + y")));
}

#[test]
fn allocation_rule_is_scoped_to_ingest_roots() {
    let all = findings();
    let a003 = by_rule(&all, "MRL-A003");
    assert!(has(&all, "MRL-A003", "core/src/lib.rs", "items . push"));
    assert!(has(&all, "MRL-A003", "framework/src/lib.rs", "vec !"));
    assert_eq!(a003.len(), 2, "unexpected A003 set: {a003:#?}");
    // Decoys: allocations under query/finish (panic roots but not ingest
    // roots) and in test code stay silent.
    assert!(!a003.iter().any(|f| f.snippet.contains("collect")));
    assert!(!a003.iter().any(|f| f.snippet.contains("Vec :: new")));
}

#[test]
fn feature_consistency_checks_both_directions() {
    let all = findings();
    let a004 = by_rule(&all, "MRL-A004");
    // Referenced but undeclared.
    assert!(a004
        .iter()
        .any(|f| { f.path.ends_with("core/src/lib.rs") && f.message.contains("\"ghost\"") }));
    // Declared, empty, never referenced.
    assert!(a004
        .iter()
        .any(|f| { f.path.ends_with("core/Cargo.toml") && f.message.contains("\"dead\"") }));
    assert_eq!(a004.len(), 2, "unexpected A004 set: {a004:#?}");
    // Decoys: a referenced feature and a forwarding feature are fine.
    assert!(!a004.iter().any(|f| f.message.contains("\"used\"")));
    assert!(!a004.iter().any(|f| f.message.contains("\"fwd\"")));
}

#[test]
fn atomics_protocol_finds_leaky_publish_cas_and_torn_read() {
    let all = findings();
    let a005 = by_rule(&all, "MRL-A005");
    // Check 1: the Relaxed reserve bump in `push_leaky` can reach exit
    // through the early return without a Release-class write.
    assert!(has(
        &all,
        "MRL-A005",
        "obs/src/lib.rs",
        "reserve . store ( seq + 1"
    ));
    // Check 2: failure ordering stronger than success in `claim`.
    assert!(a005.iter().any(|f| {
        f.path.ends_with("obs/src/lib.rs")
            && f.message
                .contains("failure ordering Acquire stronger than success ordering Relaxed")
    }));
    // Check 3: `read_torn` Acquire-loads the publish flag and then data
    // without re-reading the reserve counter.
    assert!(a005.iter().any(|f| {
        f.path.ends_with("obs/src/lib.rs")
            && f.snippet.contains("publish . load")
            && f.message.contains("does not re-read `reserve`")
    }));
    assert_eq!(a005.len(), 3, "unexpected A005 set: {a005:#?}");
    // Decoys: the all-paths-sealed writer, the revalidating reader, the
    // legal CAS, and the `// protocol:`-tagged twin stay silent.
    assert!(!a005.iter().any(|f| f.message.contains("push_ok")));
    assert!(!a005.iter().any(|f| f.message.contains("read_ok")));
    assert!(!a005.iter().any(|f| f.snippet.contains("AcqRel")));
    assert!(!a005.iter().any(|f| f.message.contains("push_tagged")));
}

#[test]
fn channel_topology_finds_cycles_dead_receivers_and_abba_sends() {
    let all = findings();
    let a006 = by_rule(&all, "MRL-A006");
    // Check 1: both bounded channels in `bounded_cycle` sit on a
    // send/recv cycle — one finding per creation site.
    let cycles: Vec<_> = a006
        .iter()
        .filter(|f| f.message.contains("send/recv cycle"))
        .collect();
    assert_eq!(cycles.len(), 2, "unexpected cycle set: {cycles:#?}");
    assert!(cycles
        .iter()
        .all(|f| f.path.ends_with("parallel/src/lib.rs") && f.snippet.contains("sync_channel")));
    // Check 2: `dropped_collector` drops the receiver with sends left.
    assert!(a006.iter().any(|f| {
        f.snippet.contains("lost_tx , lost_rx") && f.message.contains("receiver is dropped")
    }));
    // Check 3: the blocking bounded send inside the recv-headed loop.
    assert!(a006.iter().any(|f| {
        f.snippet.contains("work_tx . send ( item )")
            && f.message.contains("inside a loop that blocks on recv")
    }));
    assert_eq!(a006.len(), 4, "unexpected A006 set: {a006:#?}");
    // Decoys: the unbounded return leg and the justified twin.
    assert!(!a006.iter().any(|f| f.snippet.contains("feed_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("back_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("req_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("ack_tx")));
}

#[test]
fn accounting_dataflow_requires_credit_on_every_path() {
    let all = findings();
    let a007 = by_rule(&all, "MRL-A007");
    // True positives: the early return in `collapse_pair` and the empty
    // match arm in `absorb_shipment` both drop captured weight.
    assert!(a007.iter().any(|f| {
        f.path.ends_with("framework/src/collapse.rs")
            && f.snippet.contains("let w = src . weight")
            && f.message.contains("collapse_pair")
    }));
    assert!(a007.iter().any(|f| {
        f.snippet.contains("let mass = src . weight") && f.message.contains("absorb_shipment")
    }));
    assert_eq!(a007.len(), 2, "unexpected A007 set: {a007:#?}");
    // Decoys: the every-path credit, the `// arith:`-tagged scrap, the
    // non-accounting read, and the out-of-scope `rebalance`.
    assert!(!a007.iter().any(|f| f.message.contains("collapse_even")));
    assert!(!a007.iter().any(|f| f.message.contains("collapse_scrap")));
    assert!(!a007.iter().any(|f| f.message.contains("collapse_len")));
    assert!(!a007.iter().any(|f| f.message.contains("rebalance")));
}

#[test]
fn fingerprints_are_stable_and_unique() {
    let a = findings();
    let b = findings();
    let fps_a: Vec<u64> = a.iter().map(|f| f.fingerprint).collect();
    let fps_b: Vec<u64> = b.iter().map(|f| f.fingerprint).collect();
    assert_eq!(fps_a, fps_b, "fingerprints must be deterministic");
    let unique: std::collections::BTreeSet<u64> = fps_a.iter().copied().collect();
    assert_eq!(unique.len(), fps_a.len(), "fingerprints must be unique");
    assert!(!a.is_empty());
}

#[test]
fn json_rendering_covers_every_finding() {
    let all = findings();
    let json = analyzer::json::render(&all);
    assert!(json.contains(&format!("\"total\": {}", all.len())));
    for f in &all {
        assert!(json.contains(&format!("{:016x}", f.fingerprint)));
        assert!(json.contains(f.rule));
    }
}
