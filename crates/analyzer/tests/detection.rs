//! Detection tests over the seeded-violation fixture in
//! `tests/fixture/`: every rule must fire on its true positives and stay
//! silent on the decoys and tag-suppressed twins.

use std::path::PathBuf;

use analyzer::{analyze, Finding, Workspace};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixture")
}

fn findings() -> Vec<Finding> {
    let ws = Workspace::load(&fixture_root()).expect("fixture loads");
    assert!(
        ws.recovered().is_empty(),
        "fixture must parse without recovery: {:?}",
        ws.recovered()
    );
    analyze(&ws)
}

fn by_rule<'a>(all: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    all.iter().filter(|f| f.rule == rule).collect()
}

fn has(all: &[Finding], rule: &str, path_end: &str, snippet_part: &str) -> bool {
    all.iter()
        .any(|f| f.rule == rule && f.path.ends_with(path_end) && f.snippet.contains(snippet_part))
}

#[test]
fn panic_reachability_fires_and_traces() {
    let all = findings();
    let a001 = by_rule(&all, "MRL-A001");
    // True positives: two sinks in `unguarded` (expect + index), the
    // unwrap at the end of the offer → Helper::make path-call hop, and
    // the unwrap under the `finish` root.
    assert!(has(&all, "MRL-A001", "core/src/sink.rs", "expect"));
    assert!(has(&all, "MRL-A001", "core/src/sink.rs", "values [ 0 ]"));
    assert!(has(
        &all,
        "MRL-A001",
        "framework/src/lib.rs",
        "v . unwrap ( )"
    ));
    assert!(has(
        &all,
        "MRL-A001",
        "framework/src/lib.rs",
        "out . last ( )"
    ));
    assert_eq!(a001.len(), 4, "unexpected A001 set: {a001:#?}");
    // The cross-file trace names both ends.
    let traced = a001
        .iter()
        .find(|f| f.path.ends_with("core/src/sink.rs") && f.snippet.contains("expect"))
        .expect("trace finding");
    assert!(
        traced.message.contains("core::Sketch::insert"),
        "trace must start at the hot root: {}",
        traced.message
    );
    // Decoys: unreachable helper, test-only sinks, and the tagged twin.
    assert!(!a001.iter().any(|f| f.message.contains("orphan_helper")));
    assert!(!a001.iter().any(|f| f.snippet.contains("unwrap_or")));
    assert!(
        !a001
            .iter()
            .any(|f| f.line >= 13 && f.line <= 17 && f.path.ends_with("sink.rs")),
        "tag-suppressed guarded() must stay silent"
    );
}

#[test]
fn arithmetic_safety_fires_on_accounting_operators_only() {
    let all = findings();
    let a002 = by_rule(&all, "MRL-A002");
    assert!(has(&all, "MRL-A002", "core/src/lib.rs", "count += 1"));
    assert!(has(&all, "MRL-A002", "core/src/sink.rs", "weight * 2"));
    assert!(has(
        &all,
        "MRL-A002",
        "framework/src/lib.rs",
        "total_n << 1"
    ));
    assert_eq!(a002.len(), 3, "unexpected A002 set: {a002:#?}");
    // Decoys: the `// arith:`-tagged twin, float arithmetic, and
    // non-accounting identifiers.
    assert!(!a002.iter().any(|f| f.snippet.contains("seen += 1")));
    assert!(!a002.iter().any(|f| f.snippet.contains("2.0")));
    assert!(!a002.iter().any(|f| f.snippet.contains("x + y")));
}

#[test]
fn allocation_rule_is_scoped_to_ingest_roots() {
    let all = findings();
    let a003 = by_rule(&all, "MRL-A003");
    assert!(has(&all, "MRL-A003", "core/src/lib.rs", "items . push"));
    assert!(has(&all, "MRL-A003", "framework/src/lib.rs", "vec !"));
    assert_eq!(a003.len(), 2, "unexpected A003 set: {a003:#?}");
    // Decoys: allocations under query/finish (panic roots but not ingest
    // roots) and in test code stay silent.
    assert!(!a003.iter().any(|f| f.snippet.contains("collect")));
    assert!(!a003.iter().any(|f| f.snippet.contains("Vec :: new")));
}

#[test]
fn feature_consistency_checks_both_directions() {
    let all = findings();
    let a004 = by_rule(&all, "MRL-A004");
    // Referenced but undeclared.
    assert!(a004
        .iter()
        .any(|f| { f.path.ends_with("core/src/lib.rs") && f.message.contains("\"ghost\"") }));
    // Declared, empty, never referenced.
    assert!(a004
        .iter()
        .any(|f| { f.path.ends_with("core/Cargo.toml") && f.message.contains("\"dead\"") }));
    assert_eq!(a004.len(), 2, "unexpected A004 set: {a004:#?}");
    // Decoys: a referenced feature and a forwarding feature are fine.
    assert!(!a004.iter().any(|f| f.message.contains("\"used\"")));
    assert!(!a004.iter().any(|f| f.message.contains("\"fwd\"")));
}

#[test]
fn atomics_protocol_finds_leaky_publish_cas_and_torn_read() {
    let all = findings();
    let a005 = by_rule(&all, "MRL-A005");
    // Check 1: the Relaxed reserve bump in `push_leaky` can reach exit
    // through the early return without a Release-class write.
    assert!(has(
        &all,
        "MRL-A005",
        "obs/src/lib.rs",
        "reserve . store ( seq + 1"
    ));
    // Check 2: failure ordering stronger than success in `claim`.
    assert!(a005.iter().any(|f| {
        f.path.ends_with("obs/src/lib.rs")
            && f.message
                .contains("failure ordering Acquire stronger than success ordering Relaxed")
    }));
    // Check 3: `read_torn` Acquire-loads the publish flag and then data
    // without re-reading the reserve counter.
    assert!(a005.iter().any(|f| {
        f.path.ends_with("obs/src/lib.rs")
            && f.snippet.contains("publish . load")
            && f.message.contains("does not re-read `reserve`")
    }));
    assert_eq!(a005.len(), 3, "unexpected A005 set: {a005:#?}");
    // Decoys: the all-paths-sealed writer, the revalidating reader, the
    // legal CAS, and the `// protocol:`-tagged twin stay silent.
    assert!(!a005.iter().any(|f| f.message.contains("push_ok")));
    assert!(!a005.iter().any(|f| f.message.contains("read_ok")));
    assert!(!a005.iter().any(|f| f.snippet.contains("AcqRel")));
    assert!(!a005.iter().any(|f| f.message.contains("push_tagged")));
}

#[test]
fn channel_topology_finds_cycles_dead_receivers_and_abba_sends() {
    let all = findings();
    let a006 = by_rule(&all, "MRL-A006");
    // Check 1: both bounded channels in `bounded_cycle` sit on a
    // send/recv cycle — one finding per creation site.
    let cycles: Vec<_> = a006
        .iter()
        .filter(|f| f.message.contains("send/recv cycle"))
        .collect();
    assert_eq!(cycles.len(), 2, "unexpected cycle set: {cycles:#?}");
    assert!(cycles
        .iter()
        .all(|f| f.path.ends_with("parallel/src/lib.rs") && f.snippet.contains("sync_channel")));
    // Check 2: `dropped_collector` drops the receiver with sends left.
    assert!(a006.iter().any(|f| {
        f.snippet.contains("lost_tx , lost_rx") && f.message.contains("receiver is dropped")
    }));
    // Check 3: the blocking bounded send inside the recv-headed loop.
    assert!(a006.iter().any(|f| {
        f.snippet.contains("work_tx . send ( item )")
            && f.message.contains("inside a loop that blocks on recv")
    }));
    assert_eq!(a006.len(), 4, "unexpected A006 set: {a006:#?}");
    // Decoys: the unbounded return leg and the justified twin.
    assert!(!a006.iter().any(|f| f.snippet.contains("feed_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("back_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("req_tx")));
    assert!(!a006.iter().any(|f| f.snippet.contains("ack_tx")));
}

#[test]
fn accounting_dataflow_requires_credit_on_every_path() {
    let all = findings();
    let a007 = by_rule(&all, "MRL-A007");
    // True positives: the early return in `collapse_pair` and the empty
    // match arm in `absorb_shipment` both drop captured weight.
    assert!(a007.iter().any(|f| {
        f.path.ends_with("framework/src/collapse.rs")
            && f.snippet.contains("let w = src . weight")
            && f.message.contains("collapse_pair")
    }));
    assert!(a007.iter().any(|f| {
        f.snippet.contains("let mass = src . weight") && f.message.contains("absorb_shipment")
    }));
    assert_eq!(a007.len(), 2, "unexpected A007 set: {a007:#?}");
    // Decoys: the every-path credit, the `// arith:`-tagged scrap, the
    // non-accounting read, and the out-of-scope `rebalance`.
    assert!(!a007.iter().any(|f| f.message.contains("collapse_even")));
    assert!(!a007.iter().any(|f| f.message.contains("collapse_scrap")));
    assert!(!a007.iter().any(|f| f.message.contains("collapse_len")));
    assert!(!a007.iter().any(|f| f.message.contains("rebalance")));
}

#[test]
fn nondeterminism_taint_reports_each_source_kind_once() {
    let all = findings();
    let a008 = by_rule(&all, "MRL-A008");
    // True positives: one per modelled source kind, all reached from the
    // `from_shipments` nondet root.
    assert!(has(
        &all,
        "MRL-A008",
        "parallel/src/nondet.rs",
        "inbox . recv"
    ));
    assert!(has(
        &all,
        "MRL-A008",
        "parallel/src/nondet.rs",
        "ranks . iter"
    ));
    assert!(has(
        &all,
        "MRL-A008",
        "parallel/src/nondet.rs",
        "from_entropy"
    ));
    assert!(has(
        &all,
        "MRL-A008",
        "parallel/src/nondet.rs",
        "Instant :: now"
    ));
    assert_eq!(a008.len(), 4, "unexpected A008 set: {a008:#?}");
    // The entropy draw sits behind a mutual-recursion SCC; the trace
    // must still start at the root.
    let through_scc = a008
        .iter()
        .find(|f| f.snippet.contains("from_entropy"))
        .expect("SCC-reached source");
    assert!(
        through_scc.message.contains("parallel::from_shipments"),
        "trace must start at the nondet root: {}",
        through_scc.message
    );
    // Decoys: seeded construction, tree-order iteration, the unreached
    // entropy draw, the test-only clock, and the reviewed twin.
    assert!(!a008.iter().any(|f| f.snippet.contains("seed_from_u64")));
    assert!(!a008.iter().any(|f| f.snippet.contains("tree . iter")));
    assert!(!a008.iter().any(|f| f.snippet.contains("thread_rng")));
    assert_eq!(
        a008.iter()
            .filter(|f| f.snippet.contains("Instant :: now"))
            .count(),
        1,
        "the reviewed clock twin must stay silent"
    );
}

#[test]
fn unsafe_containment_requires_tag_and_allowlist() {
    let all = findings();
    let a009 = by_rule(&all, "MRL-A009");
    // Untagged block: both obligations fire on the same line.
    let peek: Vec<_> = a009
        .iter()
        .filter(|f| f.message.contains("peek_unchecked"))
        .collect();
    assert_eq!(peek.len(), 2, "unexpected peek set: {peek:#?}");
    assert!(peek.iter().any(|f| f.message.contains("no `// safety:`")));
    assert!(peek
        .iter()
        .any(|f| f.message.contains("outside the unsafe allowlist")));
    // Tagged block: only the allowlist obligation remains, and the
    // message names the direct caller and hot-path status.
    let masked: Vec<_> = a009
        .iter()
        .filter(|f| f.message.contains("masked_peek"))
        .collect();
    assert_eq!(masked.len(), 1, "a tag never waives the allowlist");
    assert!(masked[0].message.contains("sampler"));
    assert!(masked[0]
        .message
        .contains("not reachable from a hot-path root"));
    // Untagged `unsafe fn`: two findings at the declaration.
    let raw: Vec<_> = a009
        .iter()
        .filter(|f| f.message.contains("raw_total"))
        .collect();
    assert_eq!(raw.len(), 2, "unexpected raw_total set: {raw:#?}");
    assert!(raw.iter().all(|f| f.message.contains("unsafe fn")));
    assert_eq!(a009.len(), 5, "unexpected A009 set: {a009:#?}");
    // Decoys: the tagged sites in the allowlisted timer file are silent.
    assert!(!a009.iter().any(|f| f.path.ends_with("obs/src/timer.rs")));
}

#[test]
fn panic_audit_flags_lying_and_stale_tags_only() {
    let all = findings();
    let a010 = by_rule(&all, "MRL-A010");
    // Check 1: the tagged must-execute macro in a reached function.
    let lying: Vec<_> = a010
        .iter()
        .filter(|f| f.message.contains("contradicted"))
        .collect();
    assert_eq!(lying.len(), 1, "unexpected lying set: {lying:#?}");
    assert!(lying[0].path.ends_with("framework/src/audit.rs"));
    assert!(lying[0].snippet.contains("unreachable !"));
    assert!(
        lying[0].message.contains("framework::Auditor::finish"),
        "check 1 must name the reaching root: {}",
        lying[0].message
    );
    // Check 2: the unreached-function tag and the sinkless tag.
    let stale: Vec<_> = a010
        .iter()
        .filter(|f| f.message.contains("stale"))
        .collect();
    assert_eq!(stale.len(), 2, "unexpected stale set: {stale:#?}");
    assert!(stale
        .iter()
        .any(|f| f.snippet.contains("no root reaches this function")));
    assert!(stale
        .iter()
        .any(|f| f.snippet.contains("this body has no sink")));
    assert_eq!(a010.len(), 3, "unexpected A010 set: {a010:#?}");
    // Decoys: the credited tag on the guarded sink (here and in the
    // core fixture) and the test-span tag stay silent.
    assert!(!a010
        .iter()
        .any(|f| f.snippet.contains("keeps values non-empty")));
    assert!(!a010.iter().any(|f| f.path.ends_with("core/src/sink.rs")));
    assert!(!a010
        .iter()
        .any(|f| f.snippet.contains("test spans are exempt")));
}

#[test]
fn fingerprints_are_stable_and_unique() {
    let a = findings();
    let b = findings();
    let fps_a: Vec<u64> = a.iter().map(|f| f.fingerprint).collect();
    let fps_b: Vec<u64> = b.iter().map(|f| f.fingerprint).collect();
    assert_eq!(fps_a, fps_b, "fingerprints must be deterministic");
    let unique: std::collections::BTreeSet<u64> = fps_a.iter().copied().collect();
    assert_eq!(unique.len(), fps_a.len(), "fingerprints must be unique");
    assert!(!a.is_empty());
}

#[test]
fn json_rendering_covers_every_finding() {
    let all = findings();
    let json = analyzer::json::render(&all);
    assert!(json.contains(&format!("\"total\": {}", all.len())));
    for f in &all {
        assert!(json.contains(&format!("{:016x}", f.fingerprint)));
        assert!(json.contains(f.rule));
    }
}
