//! Cross-crate call-graph edge resolution, pinned against the DESIGN.md
//! §3.11 contract: method calls over-approximate to every workspace
//! method of that name (trait dispatch is never narrowed by receiver
//! type), plain and module-qualified calls fan out to every same-name
//! free function in any crate, `Self::` stays within the enclosing impl,
//! and capitalised non-workspace types (std) produce no edge at all.

use analyzer::graph::CallGraph;
use analyzer::parser::{parse_file, ParsedFile};

const ALPHA: &str = "\
pub trait Step {
    fn prep(&self);
    fn step(&self) {
        self.prep();
    }
}

pub fn helper() {}
";

const BETA: &str = "\
pub struct Engine;

impl Step for Engine {
    fn prep(&self) {}
    fn step(&self) {
        helper();
    }
}

impl Engine {
    pub fn park(&self) {}
}

pub fn helper() {}
";

const GAMMA: &str = "\
pub struct Local;

impl Local {
    pub fn make() -> Local {
        Local
    }
    pub fn go(&self) {
        let _ = Self::make();
    }
}

pub struct Other;

impl Other {
    pub fn make() -> Other {
        Other
    }
}

pub fn drive(x: &Engine) {
    x.step();
}

pub fn call_free() {
    helper();
}

pub fn call_mod() {
    left::helper();
}

pub fn call_typed(e: &Engine) {
    Engine::park(e);
}

pub fn call_std() {
    let _v: Vec<u8> = Vec::new();
}
";

/// Three single-file crates, exactly as the workspace loader would hand
/// them to the graph builder.
fn workspace() -> Vec<ParsedFile> {
    [("alpha", ALPHA), ("beta", BETA), ("gamma", GAMMA)]
        .into_iter()
        .map(|(krate, src)| {
            let path = format!("crates/{krate}/src/lib.rs");
            parse_file(&path, src).expect("fixture parses")
        })
        .collect()
}

fn graph(files: &[ParsedFile]) -> CallGraph {
    CallGraph::build(files, |path: &str| {
        path.split('/').nth(1).expect("crates/<name>/…").to_string()
    })
}

/// Index of the unique fn whose `crate::Type::name` label matches.
fn idx(g: &CallGraph, label: &str) -> usize {
    let hits = g.find(|f| f.label() == label);
    assert_eq!(hits.len(), 1, "exactly one fn labelled {label}");
    hits[0]
}

#[test]
fn method_calls_over_approximate_across_trait_and_impl() {
    let files = workspace();
    let g = graph(&files);
    let drive = idx(&g, "gamma::drive");
    // `x.step()` is untyped dispatch: both the trait default in alpha
    // and the concrete impl in beta must be edges — the analyzer keeps
    // every candidate rather than guessing the receiver (§3.11).
    let default = idx(&g, "alpha::Step::step");
    let concrete = idx(&g, "beta::Engine::step");
    assert!(g.edges[drive].contains(&default), "trait default dropped");
    assert!(g.edges[drive].contains(&concrete), "concrete impl dropped");
    // The over-approximation is exactly the step methods — the prep
    // methods and free fns are not swept in by the method call.
    assert_eq!(g.edges[drive].len(), 2);
}

#[test]
fn trait_default_bodies_produce_edges_like_any_other_fn() {
    let files = workspace();
    let g = graph(&files);
    // `Step::step`'s default body calls `self.prep()`: both the bodyless
    // trait declaration and beta's implementation are candidates.
    let default = idx(&g, "alpha::Step::step");
    let decl = idx(&g, "alpha::Step::prep");
    let impl_prep = idx(&g, "beta::Engine::prep");
    assert!(g.edges[default].contains(&decl));
    assert!(g.edges[default].contains(&impl_prep));
}

#[test]
fn plain_calls_fan_out_to_same_name_free_fns_in_every_crate() {
    let files = workspace();
    let g = graph(&files);
    let caller = idx(&g, "gamma::call_free");
    let alpha_h = idx(&g, "alpha::helper");
    let beta_h = idx(&g, "beta::helper");
    // gamma has no `helper` of its own; resolution is workspace-wide and
    // cannot tell the siblings apart, so both crates' fns get an edge.
    assert_eq!(g.edges[caller], vec![alpha_h, beta_h]);
    // The same holds from inside beta — and the ambiguity includes the
    // caller's own crate-local definition.
    let step = idx(&g, "beta::Engine::step");
    assert!(g.edges[step].contains(&alpha_h));
    assert!(g.edges[step].contains(&beta_h));
}

#[test]
fn module_qualified_calls_fall_back_to_free_fns() {
    let files = workspace();
    let g = graph(&files);
    let caller = idx(&g, "gamma::call_mod");
    // `left::helper()` — the analyzer has no module map, so a lowercase
    // qualifier degrades to the free-fn fan-out (§3.11 caveat: module
    // paths do not narrow resolution).
    let alpha_h = idx(&g, "alpha::helper");
    let beta_h = idx(&g, "beta::helper");
    assert_eq!(g.edges[caller], vec![alpha_h, beta_h]);
}

#[test]
fn typed_paths_resolve_cross_crate_and_self_stays_home() {
    let files = workspace();
    let g = graph(&files);
    // `Engine::park(e)` from gamma resolves through the workspace type
    // index into beta — typed paths are precise when the type is known.
    let typed = idx(&g, "gamma::call_typed");
    assert_eq!(g.edges[typed], vec![idx(&g, "beta::Engine::park")]);
    // `Self::make()` maps to the enclosing impl's type only: Local::make
    // gets the edge, the same-name Other::make must not.
    let go = idx(&g, "gamma::Local::go");
    assert_eq!(g.edges[go], vec![idx(&g, "gamma::Local::make")]);
}

#[test]
fn non_workspace_types_resolve_to_no_edge() {
    let files = workspace();
    let g = graph(&files);
    // `Vec::new()` — capitalised but not a workspace type: std never
    // re-enters the workspace, even though `make` free-fn fallback would
    // be tempting for an unknown segment.
    let caller = idx(&g, "gamma::call_std");
    assert!(g.edges[caller].is_empty());
}
