//! Cross-file callees of the hot root: MRL-A001 must trace
//! `core::Sketch::insert → core::unguarded` across the module boundary.

/// MRL-A001 true positives: an `.expect(…)` and an unchecked index,
/// reachable from `Sketch::insert`.
pub fn unguarded(values: &[u64]) -> u64 {
    let first = values.first().expect("fixture nonempty");
    first + values[0]
}

/// Suppressed twin: same sinks, function-level justification tag.
// panic-free: fixture — the caller guarantees a non-empty slice
pub fn guarded(values: &[u64]) -> u64 {
    let first = values.first().expect("fixture nonempty");
    first + values[0]
}

/// MRL-A002 decoy territory: this is unchecked multiplication on an
/// accounting name (`weight`), so it IS a true positive — it pins the
/// rule firing on a plain binary operator, not just `+=`.
pub fn scaled(weight: u64) -> u64 {
    weight * 2
}
