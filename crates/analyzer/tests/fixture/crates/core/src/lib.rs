//! Seeded-violation fixture: every rule's true positives, decoys, and
//! tag-suppressed twins live here. The detection test pins which lines
//! fire and — just as importantly — which stay silent.
//!
//! This file is never compiled; it only has to parse.

mod sink;

pub struct Sketch {
    pub count: u64,
    pub seen: u64,
    pub mass: u64,
    pub items: Vec<u64>,
}

impl Sketch {
    /// Hot root: everything reachable from here is audited.
    pub fn insert(&mut self, item: u64) {
        // MRL-A002 true positive: unchecked `+=` on an accounting value.
        self.count += 1;
        // Suppressed twin: statement-level arith tag.
        // arith: fixture — justified site must stay silent
        self.seen += 1;
        // Silent: the checked fix the rule asks for is not an operator.
        self.mass = self.mass.saturating_add(1);
        // MRL-A003 true positive: allocation on the ingest path.
        self.items.push(item);
        sink::unguarded(&self.items);
        sink::guarded(&self.items);
        sink::scaled(item);
    }

    /// Query root (a panic root, but NOT an ingest root): allocation here
    /// is a decoy for MRL-A003 and must stay silent.
    pub fn query(&self, phi: f64) -> Vec<u64> {
        let scaled = phi * 2.0;
        let keep = scaled as usize;
        self.items.iter().take(keep).copied().collect()
    }
}

/// Decoy: panics, but nothing reachable from a hot root calls it.
pub fn orphan_helper(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

/// Decoy: float arithmetic touching an accounting name stays out of
/// MRL-A002 scope (the rule is about exact integer accounting).
pub fn float_decoy(weight: f64) -> f64 {
    weight * 2.0
}

/// Decoy: arithmetic on non-accounting identifiers is out of scope.
pub fn plain_math(x: u64, y: u64) -> u64 {
    x + y
}

#[cfg(feature = "used")]
pub fn gated() -> u64 {
    1
}

pub fn ghost_gated() -> u64 {
    // MRL-A004 true positive: feature "ghost" is not declared.
    if cfg!(feature = "ghost") {
        2
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    /// Decoy: sinks in test code are never reported.
    #[test]
    fn test_decoy() {
        let v: Vec<u64> = Vec::new();
        assert!(v.first().copied().unwrap_or(0) == 0);
        let w: Option<u64> = None;
        let _ = w.unwrap();
    }
}
