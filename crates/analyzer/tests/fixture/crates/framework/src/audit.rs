//! Fixture for MRL-A010: a lying panic-audit tag on a must-execute
//! panic macro, stale tags that suppress nothing, and the decoys —
//! a credited tag on a live guarded sink and a tag inside a test span.
//!
//! This file is never compiled; it only has to parse.

pub struct Auditor;

impl Auditor {
    /// Hot root (`finish` is a panic root): reaches the lying tag and
    /// the credited tag below.
    pub fn finish(&self, values: &[u64]) -> u64 {
        let tail = checked_tail(values);
        tail ^ lying_path(tail)
    }
}

/// Check-1 true positive: the tag claims the macro is unreachable, but
/// it executes on every path through this reached function.
fn lying_path(x: u64) -> u64 {
    let _y = x.rotate_left(1);
    // panic-free: fixture — lying, the macro below always runs
    unreachable!("fixture: always taken")
}

/// Decoy: the tag below covers a live, reached sink — credited, silent.
// panic-free: fixture — finish's caller contract keeps values non-empty
fn checked_tail(values: &[u64]) -> u64 {
    values[values.len() - 1]
}

/// Check-2 true positive: nothing reaches this function, so its tag
/// suppresses no finding under the summaries.
pub fn orphan_checked(values: &[u64]) -> u64 {
    // panic-free: fixture — stale, no root reaches this function
    values[0]
}

/// Check-2 true positive: there is no panic sink under this tag at all.
// panic-free: fixture — stale, this body has no sink
pub fn sinkless(x: u64) -> u64 {
    x.wrapping_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decoy: tags inside test spans are documentation, never stale.
    #[test]
    fn tagged_test_decoy() {
        // panic-free: fixture — test spans are exempt from the audit
        let v = [1u64];
        assert_eq!(sinkless(v[0]), 2);
    }
}
