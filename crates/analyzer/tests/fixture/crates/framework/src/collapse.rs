//! Fixture module for MRL-A007: collapse paths that capture accounting
//! state and must spend it on every path to exit.

pub struct Bundle {
    pub weight: u64,
    pub items: Vec<u64>,
}

pub struct Ledger {
    pub total_weight: u64,
}

impl Ledger {
    /// MRL-A007 true positive: the captured weight never reaches the
    /// ledger on the early-return path.
    pub fn collapse_pair(&mut self, src: Bundle) -> u64 {
        let w = src.weight;
        if src.items.is_empty() {
            return 0;
        }
        self.total_weight = self.total_weight.saturating_add(w);
        w
    }

    /// MRL-A007 true positive: the empty match arm forgets the credit.
    pub fn absorb_shipment(&mut self, src: Bundle) -> u64 {
        let mass = src.weight;
        match src.items.len() {
            0 => 0,
            _ => {
                self.total_weight = self.total_weight.saturating_add(mass);
                mass
            }
        }
    }

    /// Decoy: every path credits the captured weight.
    pub fn collapse_even(&mut self, src: Bundle) -> u64 {
        let w = src.weight;
        self.total_weight = self.total_weight.saturating_add(w);
        w
    }

    /// Suppressed twin: the drop is deliberate and audited.
    pub fn collapse_scrap(&mut self, src: Bundle) -> usize {
        // arith: fixture — scrapped mass is audited by the caller
        let w = src.weight;
        src.items.len()
    }

    /// Decoy: non-accounting reads are out of scope even on a collapse
    /// path with an early return.
    pub fn collapse_len(&mut self, src: Bundle) -> usize {
        let n = src.items.len();
        if n == 0 {
            return 0;
        }
        n
    }

    /// Decoy: drops accounting state on a path, but `rebalance` is not
    /// a seal/collapse/shipment/absorb function, so it is out of scope.
    pub fn rebalance(&mut self, src: Bundle) -> u64 {
        let w = src.weight;
        let spare = src.items.len() as u64;
        spare
    }
}
