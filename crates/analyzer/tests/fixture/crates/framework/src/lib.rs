//! Second fixture crate: pins cross-crate tracing and `Type::method`
//! path-call resolution.

pub mod collapse;

pub struct Helper;

impl Helper {
    /// Reached from `offer` below via a `Helper::make` path call.
    pub fn make() -> Vec<u64> {
        // MRL-A001 true positive at the end of a two-hop trace.
        let v: Option<u64> = None;
        vec![v.unwrap()]
    }
}

pub struct Gate {
    pub total_n: u64,
}

impl Gate {
    /// Hot root in the framework crate.
    pub fn offer(&mut self, n: u64) {
        // MRL-A002 true positive: `<<` on an accounting value.
        let _doubled = self.total_n << 1;
        self.total_n = self.total_n.saturating_add(n);
        let _scratch = Helper::make();
    }

    /// Decoy: `finish` is a panic root but not an ingest root, so this
    /// allocation is silent for MRL-A003 — and the unwrap still fires
    /// for MRL-A001.
    pub fn finish(&self) -> Vec<u64> {
        let out: Vec<u64> = (0..self.total_n).collect();
        let _last = out.last().copied().unwrap();
        out
    }
}
