//! Fixture crate for MRL-A005: a seqlock-shaped journal with one clean
//! writer/reader pair, one leaky writer, one torn reader, one CAS with
//! an over-strong failure ordering, and one suppressed twin.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

pub struct Journal {
    pub reserve: AtomicU64,
    pub publish: AtomicU64,
    pub word: AtomicU64,
    pub owner: AtomicU32,
}

impl Journal {
    /// Decoy: the Relaxed reserve bump is sealed by Release stores on
    /// every path, and both seqlock pairs (reserve/word,
    /// reserve/publish) are formed here.
    pub fn push_ok(&self, v: u64) {
        let seq = self.reserve.load(Ordering::Relaxed);
        self.reserve.store(seq + 1, Ordering::Relaxed);
        self.word.store(v, Ordering::Release);
        self.publish.store(seq + 1, Ordering::Release);
    }

    /// MRL-A005 true positive (check 1): the early return skips the
    /// Release publish, so the Relaxed reserve bump can reach exit
    /// unsealed.
    pub fn push_leaky(&self, v: u64) {
        let seq = self.reserve.load(Ordering::Relaxed);
        self.reserve.store(seq + 1, Ordering::Relaxed);
        if v == 0 {
            return;
        }
        self.word.store(v, Ordering::Release);
        self.publish.store(seq + 1, Ordering::Release);
    }

    /// Suppressed twin of `push_leaky`'s shape.
    // protocol: fixture — the caller issues the sealing Release write
    pub fn push_tagged(&self, v: u64) {
        self.reserve.store(v, Ordering::Relaxed);
    }

    /// Decoy: a seqlock reader that re-reads the reserve counter after
    /// its data loads.
    pub fn read_ok(&self) -> Option<u64> {
        let before = self.reserve.load(Ordering::Acquire);
        let p = self.publish.load(Ordering::Acquire);
        let w = self.word.load(Ordering::Acquire);
        let after = self.reserve.load(Ordering::Acquire);
        if before == after && p != 0 {
            Some(w)
        } else {
            None
        }
    }

    /// MRL-A005 true positive (check 3): loads the publish side of the
    /// pair, then data, and never re-reads `reserve`.
    pub fn read_torn(&self) -> u64 {
        let _p = self.publish.load(Ordering::Acquire);
        self.word.load(Ordering::Acquire)
    }

    /// MRL-A005 true positive (check 2): the failure ordering outranks
    /// the success ordering.
    pub fn claim(&self) -> bool {
        self.owner
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire)
            .is_ok()
    }

    /// Decoy: success at least as strong as failure is the legal shape.
    pub fn claim_ok(&self) -> bool {
        self.owner
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}
