//! Allowlist decoy for MRL-A009: this file's path ends in
//! `crates/obs/src/timer.rs`, the one sanctioned unsafe location, and
//! every site carries a contract tag — so nothing here may fire.
//!
//! This file is never compiled; it only has to parse.

/// Decoy: tagged (uppercase, matched case-insensitively) and
/// allowlisted — silent.
pub fn cycle_count() -> u64 {
    // SAFETY: fixture — register read with no preconditions
    unsafe { fake_tick_read() }
}

/// Decoy: a tagged `unsafe fn` inside the allowlisted file — silent.
// safety: fixture — callers need no preconditions, the read cannot trap
unsafe fn fake_tick_read() -> u64 {
    0
}
