//! Fixture for MRL-A009: unsafe sites outside the allowlist, with and
//! without contract tags, plus an `unsafe fn` whose finding anchors at
//! the declaration line. (The tag word itself must not appear in these
//! docs — the scan is substring-based.)
//!
//! This file is never compiled; it only has to parse.

/// Two findings: no contract tag, and outside the allowlist.
pub fn peek_unchecked(values: &[u64], idx: usize) -> u64 {
    unsafe { *values.get_unchecked(idx) }
}

/// One finding: tagged, but a tag never waives the allowlist.
// safety: fixture — idx is masked to the slice's fixed length below
pub fn masked_peek(values: &[u64], idx: usize) -> u64 {
    unsafe { *values.get_unchecked(idx & 7) }
}

/// Caller of `masked_peek`: its name must appear in the allowlist
/// finding's caller annotation.
pub fn sampler(values: &[u64]) -> u64 {
    masked_peek(values, 3)
}

/// Two findings anchored at this declaration: an untagged `unsafe fn`
/// outside the allowlist.
pub unsafe fn raw_total(ptr: *const u64, len: usize) -> u64 {
    let mut acc = 0u64;
    let mut i = 0;
    while i < len {
        acc = acc.wrapping_add(*ptr.add(i));
        i += 1;
    }
    acc
}
