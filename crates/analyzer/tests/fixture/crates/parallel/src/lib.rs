//! Fixture crate for MRL-A006: a bounded request/response cycle, a
//! dropped collector, an unbounded-return decoy, and a suppressed twin.

use std::sync::mpsc;
use std::thread;

/// MRL-A006 true positives: both bounded channels sit on a send/recv
/// cycle (two findings at the creation sites), and the main loop issues
/// a blocking bounded send while headed by a blocking recv (one finding
/// at the send).
pub fn bounded_cycle() {
    let (work_tx, work_rx) = mpsc::sync_channel::<u64>(2);
    let (done_tx, done_rx) = mpsc::sync_channel::<u64>(2);
    let worker = thread::spawn(move || {
        for item in work_rx.iter() {
            done_tx.send(item).ok();
        }
    });
    work_tx.send(0).ok();
    while let Ok(item) = done_rx.recv() {
        work_tx.send(item).ok();
    }
    drop(work_tx);
    worker.join().ok();
}

/// MRL-A006 true positive: the receiver is dropped while the spawned
/// sender still has send sites.
pub fn dropped_collector() {
    let (lost_tx, lost_rx) = mpsc::channel::<u64>();
    drop(lost_rx);
    let feeder = thread::spawn(move || {
        lost_tx.send(7).ok();
    });
    feeder.join().ok();
}

/// Decoy: the return leg is unbounded and the forward sends are
/// non-blocking, so no check fires — recycle loops shaped like
/// `parallel`'s buffer return path are legal.
pub fn recycle_return_is_unbounded() {
    let (feed_tx, feed_rx) = mpsc::sync_channel::<u64>(4);
    let (back_tx, back_rx) = mpsc::channel::<u64>();
    let worker = thread::spawn(move || {
        for item in feed_rx.iter() {
            back_tx.send(item).ok();
        }
    });
    let mut i = 0;
    while feed_tx.try_send(i).is_ok() {
        i = i.wrapping_add(1);
        while back_rx.try_recv().is_ok() {}
    }
    drop(feed_tx);
    worker.join().ok();
}

/// Suppressed twin of `bounded_cycle`: same topology, justified.
// protocol: fixture — request/ack strictly alternate, never both full
pub fn justified_cycle() {
    let (req_tx, req_rx) = mpsc::sync_channel::<u64>(2);
    let (ack_tx, ack_rx) = mpsc::sync_channel::<u64>(2);
    let worker = thread::spawn(move || {
        for item in req_rx.iter() {
            ack_tx.send(item).ok();
        }
    });
    req_tx.send(0).ok();
    while let Ok(item) = ack_rx.recv() {
        req_tx.send(item).ok();
    }
    drop(req_tx);
    worker.join().ok();
}
