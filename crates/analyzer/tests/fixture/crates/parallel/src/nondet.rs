//! Fixture for MRL-A008: every modelled nondeterminism source on a
//! result-affecting path, plus the decoys that must stay silent —
//! seeded RNG, tree-order iteration, an unreached entropy draw, a
//! test-only clock read, and a `// nondet:`-reviewed twin.
//!
//! This file is never compiled; it only has to parse.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::Receiver;
use std::time::Instant;

/// A008 root (`from_shipments` is on the nondet root list): everything
/// called from here is on a result-affecting path.
pub fn from_shipments(
    inbox: &Receiver<u64>,
    ranks: &HashMap<u64, u64>,
    tree: &BTreeMap<u64, u64>,
) -> u64 {
    let mut acc = drain_order(inbox);
    acc ^= hash_walk(ranks);
    acc ^= spin_a(3);
    acc ^= clock_salt(acc);
    acc ^= reviewed_clock(acc);
    acc ^= seeded_pick(acc);
    acc ^= tree_walk(tree);
    acc
}

/// MRL-A008 true positive: cross-thread completion order — the recv
/// loop folds values in arrival order.
fn drain_order(inbox: &Receiver<u64>) -> u64 {
    let mut acc = 0u64;
    while let Ok(v) = inbox.recv() {
        acc = acc.rotate_left(7) ^ v;
    }
    acc
}

/// MRL-A008 true positive: hash-order iteration feeding the result.
fn hash_walk(ranks: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in ranks.iter() {
        acc ^= k.rotate_left(5) ^ v;
    }
    acc
}

/// Mutual recursion with `spin_b`: the SCC fixpoint must still surface
/// the entropy draw reached through the cycle.
fn spin_a(depth: u64) -> u64 {
    if depth == 0 {
        unseeded_pick()
    } else {
        spin_b(depth - 1)
    }
}

fn spin_b(depth: u64) -> u64 {
    spin_a(depth / 2)
}

/// MRL-A008 true positive, reached through the SCC: unseeded RNG
/// construction.
fn unseeded_pick() -> u64 {
    let mut rng = SmallRng::from_entropy();
    rng.next_u64()
}

/// MRL-A008 true positive: a wall-clock read salted into the result.
fn clock_salt(acc: u64) -> u64 {
    let t = Instant::now();
    acc ^ t.elapsed().subsec_nanos() as u64
}

/// Suppressed twin of `clock_salt`: same clock read, reviewed.
fn reviewed_clock(acc: u64) -> u64 {
    // nondet: fixture — justified site must stay silent
    let t = Instant::now();
    acc ^ t.elapsed().subsec_nanos() as u64
}

/// Decoy: deterministic seeding is the fix, not a finding.
fn seeded_pick(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next_u64()
}

/// Decoy: `BTreeMap` iteration is ordered — no hash collection in
/// scope, so the `.iter()` stays silent.
fn tree_walk(tree: &BTreeMap<u64, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in tree.iter() {
        acc ^= k.rotate_left(3) ^ v;
    }
    acc
}

/// Decoy: draws entropy, but nothing on a result path calls it.
pub fn orphan_entropy() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decoy: clock reads in test code are never reported.
    #[test]
    fn timing_test_decoy() {
        let t = Instant::now();
        assert!(t.elapsed().subsec_nanos() < u32::MAX);
    }
}
