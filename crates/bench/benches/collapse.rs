//! Microbenchmarks of the framework's primitive operations: weighted
//! collapse, weighted output selection, and the per-policy collapse cost
//! (B2 ablation support in DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use mrl_framework::{
    collapse_targets, merge_sorted_runs, merge_sorted_runs_with, select_weighted, sort_fixed,
    AdaptiveLowestLevel, AlsabtiRankaSingh, CollapsePolicy, Engine, EngineConfig, FixedRate,
    MergeScratch, MunroPaterson, RadixScratch, WeightedSource,
};

fn bench_weighted_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_select");
    for &k in &[64usize, 512, 4096] {
        // c = 5 sorted runs of k elements with mixed weights.
        let runs: Vec<(Vec<u64>, u64)> = (0..5u64)
            .map(|i| {
                let mut v: Vec<u64> = (0..k as u64)
                    .map(|j| (j * 2654435761 + i) % 1_000_003)
                    .collect();
                v.sort_unstable();
                (v, 1 + i)
            })
            .collect();
        let w: u64 = runs.iter().map(|&(_, w)| w).sum();
        group.bench_with_input(BenchmarkId::new("collapse_5_buffers", k), &k, |b, &k| {
            b.iter(|| {
                let sources: Vec<WeightedSource<'_, u64>> = runs
                    .iter()
                    .map(|(d, w)| WeightedSource::new(d, *w))
                    .collect();
                select_weighted(&sources, &collapse_targets(k, w, false))
            })
        });
    }
    group.finish();
}

/// The pre-skip reference: a k-way `BinaryHeap` merge that visits every
/// element of every source, accumulating mass until each target is hit.
/// Kept here (not in the library) purely as the baseline for
/// `skip_vs_heap`.
fn select_weighted_heap<T: Ord + Clone>(
    sources: &[WeightedSource<'_, T>],
    targets: &[u64],
) -> Vec<T> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(&T, usize, usize)>> = sources
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.data.is_empty())
        .map(|(i, s)| Reverse((&s.data[0], i, 0)))
        .collect();
    let mut out = Vec::with_capacity(targets.len());
    let mut cum = 0u64;
    let mut ti = 0usize;
    while let Some(Reverse((v, i, j))) = heap.pop() {
        cum += sources[i].weight;
        while ti < targets.len() && targets[ti] <= cum {
            out.push(v.clone());
            ti += 1;
        }
        if ti == targets.len() {
            break;
        }
        if j + 1 < sources[i].data.len() {
            heap.push(Reverse((&sources[i].data[j + 1], i, j + 1)));
        }
    }
    out
}

/// Sparse targets over large sources: the regime the run-based skip merge
/// is built for (collapse touches every position, but output selection
/// only needs a handful).
fn bench_skip_vs_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip_vs_heap");
    for &k in &[512usize, 4096, 32_768] {
        let runs: Vec<(Vec<u64>, u64)> = (0..5u64)
            .map(|i| {
                let mut v: Vec<u64> = (0..k as u64)
                    .map(|j| (j * 2654435761 + i) % 1_000_003)
                    .collect();
                v.sort_unstable();
                (v, 1 + i)
            })
            .collect();
        let sources: Vec<WeightedSource<'_, u64>> = runs
            .iter()
            .map(|(d, w)| WeightedSource::new(d, *w))
            .collect();
        let mass: u64 = sources.iter().map(WeightedSource::mass).sum();
        // 33 output positions spread over the full mass.
        let targets: Vec<u64> = (0..33u64).map(|i| 1 + i * (mass - 1) / 32).collect();
        group.bench_with_input(BenchmarkId::new("skip", k), &k, |b, _| {
            b.iter(|| select_weighted(&sources, &targets))
        });
        group.bench_with_input(BenchmarkId::new("heap", k), &k, |b, _| {
            b.iter(|| select_weighted_heap(&sources, &targets))
        });

        // Disjoint value ranges (the §6 coordinator case: workers over
        // different partitions): runs span whole buffers, so the skip
        // merge jumps straight to the targets.
        let disjoint: Vec<(Vec<u64>, u64)> = (0..5u64)
            .map(|i| ((i * k as u64..(i + 1) * k as u64).collect(), 1 + i))
            .collect();
        let dsources: Vec<WeightedSource<'_, u64>> = disjoint
            .iter()
            .map(|(d, w)| WeightedSource::new(d, *w))
            .collect();
        let dmass: u64 = dsources.iter().map(WeightedSource::mass).sum();
        let dtargets: Vec<u64> = (0..33u64).map(|i| 1 + i * (dmass - 1) / 32).collect();
        group.bench_with_input(BenchmarkId::new("skip_disjoint", k), &k, |b, _| {
            b.iter(|| select_weighted(&dsources, &dtargets))
        });
        group.bench_with_input(BenchmarkId::new("heap_disjoint", k), &k, |b, _| {
            b.iter(|| select_weighted_heap(&dsources, &dtargets))
        });
    }
    group.finish();
}

fn run_to_completion<P: CollapsePolicy>(policy: P, data: &[u64], b: usize, k: usize) -> u64 {
    let mut e = Engine::new(EngineConfig::new(b, k), policy, FixedRate::new(1), 3);
    for &v in data {
        e.insert(v);
    }
    e.stats().collapses
}

fn bench_policies(c: &mut Criterion) {
    let data: Vec<u64> = (0..200_000u64).map(|i| (i * 48271) % 1_000_003).collect();
    let mut group = c.benchmark_group("policy_full_run_200k");
    group.sample_size(10);
    group.bench_function("adaptive_lowest_level", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(AdaptiveLowestLevel, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("munro_paterson", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(MunroPaterson, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("alsabti_ranka_singh", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(AlsabtiRankaSingh, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Seal-time cost: bottom-up run merge (`O(k log r)`) against the old
/// sort-on-seal (`O(k log k)`) for a buffer arriving as `r` sorted runs,
/// and the sharded pipeline against single-threaded ingestion on the same
/// 1M-element stream.
fn bench_seal_and_collapse(c: &mut Criterion) {
    let k = 4096usize;
    let mut group = c.benchmark_group("seal_and_collapse");
    for &r in &[1usize, 4, 16, 64] {
        // k elements arranged as r equal-length sorted runs.
        let mut data: Vec<u64> = Vec::with_capacity(k);
        let mut starts: Vec<usize> = Vec::with_capacity(r);
        for run in 0..r {
            starts.push(data.len());
            let mut seg: Vec<u64> = (0..k / r)
                .map(|j| ((j * r + run) as u64).wrapping_mul(2654435761) % (1 << 40))
                .collect();
            seg.sort_unstable();
            data.extend(seg);
        }
        group.bench_with_input(BenchmarkId::new("run_merge_seal", r), &r, |b, _| {
            let mut scratch = Vec::new();
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    merge_sorted_runs(&mut d, &starts, &mut scratch);
                    d
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("sort_seal", r), &r, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable();
                    d
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let data: Vec<u64> = mrl_datagen::WorkloadStream::new(
        mrl_datagen::ValueDistribution::Uniform { range: 1 << 40 },
        7,
    )
    .take(1_000_000)
    .collect();
    let config = mrl_analysis::optimizer::optimize_unknown_n_with(
        0.01,
        1e-4,
        mrl_analysis::optimizer::OptimizerOptions::fast(),
    );
    let mut group = c.benchmark_group("sharded_pipeline_1m");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut sketch =
                    mrl_parallel::ShardedSketch::<u64>::from_config(config.clone(), shards, 1);
                for chunk in data.chunks(4096) {
                    sketch.insert_batch(chunk);
                }
                sketch.finish().expect("no worker panics").query(0.5)
            })
        });
    }
    group.finish();
}

/// The seal-time crossover behind `run_merge_limit(k)`: at how many runs
/// does the bottom-up `O(k log r)` run merge stop beating one
/// cache-friendly `sort_unstable` over the whole buffer? Each case sorts
/// the same k-element buffer arranged as `r` sorted runs, via both
/// routes; `run_merge_limit` should sit where the curves cross.
fn bench_seal_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("seal_crossover");
    for &k in &[256usize, 1024] {
        for &r in &[2usize, 4, 8, 16, 32, 64] {
            if r > k / 4 {
                continue;
            }
            // r sorted runs of k/r pseudo-random elements each,
            // concatenated — the shape a run-tracked filler hands to the
            // seal.
            let run_len = k / r;
            let mut data: Vec<u64> = Vec::with_capacity(k);
            let mut starts = Vec::with_capacity(r);
            for run in 0..r {
                starts.push(run * run_len);
                let mut chunk: Vec<u64> = (0..run_len as u64)
                    .map(|j| (j * 2654435761 + run as u64 * 97) % 1_000_003)
                    .collect();
                chunk.sort_unstable();
                data.extend(chunk);
            }
            let label = format!("k{k}_r{r}");
            group.bench_with_input(BenchmarkId::new("run_merge", &label), &r, |b, _| {
                // Warm scratch across iterations, as the engine's arena
                // provides in steady state.
                let mut scratch = MergeScratch::default();
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        merge_sorted_runs_with(&mut d, &starts, &mut scratch);
                        d
                    },
                    BatchSize::SmallInput,
                )
            });
            group.bench_with_input(BenchmarkId::new("sort", &label), &r, |b, _| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        d.sort_unstable();
                        d
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

/// Pins the `[RADIX_MIN_LEN, RADIX_MAX_LEN]` dispatch window: radix vs
/// comparison sort across the seal sizes the engine actually hands to
/// `try_sort_fixed` (k, the c·k raw collapse concatenation) plus the
/// boundary lengths. Radix wins only inside a window — below it pdqsort's
/// small-array paths and the kernel's fixed per-pass overhead dominate,
/// above it the byte-wise scatter's random writes fall out of cache —
/// so both bounds are pinned here; re-run this group when touching the
/// kernel and update the `radix` constants if either crossover moved.
fn bench_radix_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_crossover");
    for &len in &[32usize, 64, 128, 256, 1024, 5 * 256, 4096, 8192, 16384] {
        // The harness's stream shape: uniform below 2^40 (five live digit
        // columns, three skipped).
        let data: Vec<u64> = (0..len as u64)
            .map(|j| (j * 2654435761).wrapping_mul(j ^ 0x9E37_79B9) % (1 << 40))
            .collect();
        let label = format!("n{len}");
        group.bench_with_input(BenchmarkId::new("radix", &label), &len, |b, _| {
            let mut scratch = RadixScratch::default();
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    sort_fixed(&mut d, &mut scratch);
                    d
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("sort", &label), &len, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable();
                    d
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weighted_select,
    bench_skip_vs_heap,
    bench_policies,
    bench_seal_and_collapse,
    bench_seal_crossover,
    bench_radix_crossover
);
criterion_main!(benches);
