//! Microbenchmarks of the framework's primitive operations: weighted
//! collapse, weighted output selection, and the per-policy collapse cost
//! (B2 ablation support in DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use mrl_framework::{
    collapse_targets, select_weighted, AdaptiveLowestLevel, AlsabtiRankaSingh, CollapsePolicy,
    Engine, EngineConfig, FixedRate, MunroPaterson, WeightedSource,
};

fn bench_weighted_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_select");
    for &k in &[64usize, 512, 4096] {
        // c = 5 sorted runs of k elements with mixed weights.
        let runs: Vec<(Vec<u64>, u64)> = (0..5u64)
            .map(|i| {
                let mut v: Vec<u64> = (0..k as u64).map(|j| (j * 2654435761 + i) % 1_000_003).collect();
                v.sort_unstable();
                (v, 1 + i)
            })
            .collect();
        let w: u64 = runs.iter().map(|&(_, w)| w).sum();
        group.bench_with_input(BenchmarkId::new("collapse_5_buffers", k), &k, |b, &k| {
            b.iter(|| {
                let sources: Vec<WeightedSource<'_, u64>> =
                    runs.iter().map(|(d, w)| WeightedSource::new(d, *w)).collect();
                select_weighted(&sources, &collapse_targets(k, w, false))
            })
        });
    }
    group.finish();
}

fn run_to_completion<P: CollapsePolicy>(policy: P, data: &[u64], b: usize, k: usize) -> u64 {
    let mut e = Engine::new(EngineConfig::new(b, k), policy, FixedRate::new(1), 3);
    for &v in data {
        e.insert(v);
    }
    e.stats().collapses
}

fn bench_policies(c: &mut Criterion) {
    let data: Vec<u64> = (0..200_000u64).map(|i| (i * 48271) % 1_000_003).collect();
    let mut group = c.benchmark_group("policy_full_run_200k");
    group.sample_size(10);
    group.bench_function("adaptive_lowest_level", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(AdaptiveLowestLevel, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("munro_paterson", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(MunroPaterson, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("alsabti_ranka_singh", |b| {
        b.iter_batched(
            || data.clone(),
            |d| run_to_completion(AlsabtiRankaSingh, &d, 5, 256),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_weighted_select, bench_policies);
criterion_main!(benches);
