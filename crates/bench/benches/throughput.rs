//! Insert throughput: the unknown-`N` sketch vs the reservoir baseline vs
//! the extreme-value estimator vs raw exact collection, on a 1M-element
//! stream (B1 in DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mrl_core::{ExtremeValue, OptimizerOptions, Tail, UnknownN};
use mrl_datagen::{ValueDistribution, WorkloadStream};
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate};
use mrl_sampling::{rng_from_seed, Reservoir};

const N: u64 = 1_000_000;

fn stream() -> Vec<u64> {
    WorkloadStream::new(ValueDistribution::Uniform { range: 1 << 40 }, 7)
        .take(N as usize)
        .collect()
}

fn bench_inserts(c: &mut Criterion) {
    let data = stream();
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(0.01, 1e-4, OptimizerOptions::default());

    let mut group = c.benchmark_group("insert_1m");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    group.bench_function("unknown_n_eps_0.01", |b| {
        b.iter_batched(
            || UnknownN::<u64>::from_config(config.clone(), 1),
            |mut sketch| {
                for &v in &data {
                    sketch.insert(v);
                }
                sketch
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("reservoir_same_memory", |b| {
        b.iter_batched(
            || (Reservoir::<u64>::new(config.memory), rng_from_seed(1)),
            |(mut res, mut rng)| {
                for &v in &data {
                    res.offer(v, &mut rng);
                }
                res
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("extreme_p99", |b| {
        b.iter_batched(
            || ExtremeValue::<u64>::known_n(0.99, 0.002, 1e-4, N, Tail::High, 1),
            |mut est| {
                for &v in &data {
                    est.insert(v);
                }
                est
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("collect_and_sort_exact", |b| {
        b.iter_batched(
            || data.clone(),
            |mut all| {
                all.sort_unstable();
                all[all.len() / 2]
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

/// Batched vs scalar ingestion at controlled sampling rates (acceptance
/// bench for `insert_batch`): rate 1 exercises the bulk-copy path, rate 8
/// the one-draw-per-block path.
fn bench_batch_inserts(c: &mut Criterion) {
    let data = stream();
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(0.01, 1e-4, OptimizerOptions::default());

    let mut group = c.benchmark_group("insert_batch_1m");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    group.bench_function("unknown_n_eps_0.01_batched", |b| {
        b.iter_batched(
            || UnknownN::<u64>::from_config(config.clone(), 1),
            |mut sketch| {
                for chunk in data.chunks(1024) {
                    sketch.insert_batch(chunk);
                }
                sketch
            },
            BatchSize::LargeInput,
        )
    });

    for &rate in &[1u64, 8] {
        let engine = || {
            Engine::new(
                EngineConfig::new(5, 256),
                AdaptiveLowestLevel,
                FixedRate::new(rate),
                1,
            )
        };
        group.bench_function(format!("engine_rate{rate}_scalar"), |b| {
            b.iter_batched(
                engine,
                |mut e| {
                    for &v in &data {
                        e.insert(v);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("engine_rate{rate}_batched"), |b| {
            b.iter_batched(
                engine,
                |mut e| {
                    for chunk in data.chunks(1024) {
                        e.insert_batch(chunk);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
    }

    group.finish();
}

/// Pure ingestion cost: a buffer big enough that no fill completes during
/// the run, so neither sort nor collapse (identical on both paths) masks
/// the scalar-vs-batched difference in the sampling/fill machinery itself.
fn bench_ingest_only(c: &mut Criterion) {
    let data = stream();
    let mut group = c.benchmark_group("ingest_only_1m");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    for &rate in &[1u64, 8] {
        let k = (N / rate) as usize + 2;
        let engine = move || {
            Engine::new(
                EngineConfig::new(2, k),
                AdaptiveLowestLevel,
                FixedRate::new(rate),
                1,
            )
        };
        group.bench_function(format!("engine_rate{rate}_scalar"), |b| {
            b.iter_batched(
                engine,
                |mut e| {
                    for &v in &data {
                        e.insert(v);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("engine_rate{rate}_batched"), |b| {
            b.iter_batched(
                engine,
                |mut e| {
                    for chunk in data.chunks(1024) {
                        e.insert_batch(chunk);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
    }

    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let data = stream();
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(0.01, 1e-4, OptimizerOptions::default());
    let mut sketch = UnknownN::<u64>::from_config(config, 1);
    sketch.extend(data.iter().copied());

    let mut group = c.benchmark_group("query");
    group.bench_function("single_phi", |b| b.iter(|| sketch.query(0.5)));
    group.bench_function("seven_phis_one_pass", |b| {
        b.iter(|| sketch.query_many(&[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_batch_inserts,
    bench_ingest_only,
    bench_query
);
criterion_main!(benches);
