//! Benchmarks of the analysis layer itself: the cost of certifying a
//! configuration by schedule replay and of the full §4.5 optimisation
//! (these run at sketch-construction time, so they matter for short-lived
//! sketches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mrl_analysis::optimizer::{optimize_known_n, optimize_unknown_n_with, OptimizerOptions};
use mrl_analysis::simulate::{simulate_schedule, SimOptions};
use mrl_analysis::stein_sample_size;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_replay");
    for &(b, h) in &[(4usize, 3u32), (6, 5), (8, 6)] {
        group.bench_with_input(
            BenchmarkId::new("simulate", format!("b{b}_h{h}")),
            &(b, h),
            |bench, &(b, h)| bench.iter(|| simulate_schedule(b, h, SimOptions::default())),
        );
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    // The replay cache is process-global: prime it so the numbers reflect
    // the amortised (cached) cost an application actually pays.
    let _ = optimize_unknown_n_with(0.01, 1e-4, OptimizerOptions::default());
    group.bench_function("unknown_n_eps_0.01_cached", |b| {
        b.iter(|| optimize_unknown_n_with(0.01, 1e-4, OptimizerOptions::default()))
    });
    group.bench_function("known_n_eps_0.01_n_1e9", |b| {
        b.iter(|| optimize_known_n(0.01, 1e-4, 1_000_000_000))
    });
    group.bench_function("stein_extreme_phi_0.01", |b| {
        b.iter(|| stein_sample_size(0.01, 0.002, 1e-4))
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_optimizers);
criterion_main!(benches);
