//! Observability overhead: the 1M-element rate-1 batched engine ingest
//! (the `engine_rate1_batched` configuration from the throughput bench,
//! the worst case for instrumentation since every element is sealed and
//! collapsed) run A/B with the recorder disabled, attached to a no-op
//! recorder, attached to the lock-free in-memory recorder, and with the
//! flight-recorder journal attached (every seal and collapse pushed into
//! the per-thread event ring, with provenance and clock reads). The
//! acceptance bar is disabled-vs-baseline overhead within noise and
//! journal-attached overhead under 5% (BENCH_obs.json).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mrl_datagen::{ValueDistribution, WorkloadStream};
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate};
use mrl_obs::{EventJournal, InMemoryRecorder, JournalHandle, MetricsHandle};

const N: u64 = 1_000_000;

fn stream() -> Vec<u64> {
    WorkloadStream::new(ValueDistribution::Uniform { range: 1 << 40 }, 7)
        .take(N as usize)
        .collect()
}

fn engine_with(metrics: MetricsHandle) -> Engine<u64, AdaptiveLowestLevel, FixedRate> {
    let mut engine = Engine::new(
        EngineConfig::new(5, 256),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        1,
    );
    engine.set_metrics(metrics);
    engine
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let data = stream();

    let mut group = c.benchmark_group("obs_overhead_1m");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    let run = |e: &mut Engine<u64, AdaptiveLowestLevel, FixedRate>, data: &[u64]| {
        for chunk in data.chunks(1024) {
            e.insert_batch(chunk);
        }
    };

    group.bench_function("engine_rate1_batched_disabled", |b| {
        b.iter_batched(
            || engine_with(MetricsHandle::disabled()),
            |mut e| {
                run(&mut e, &data);
                e
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("engine_rate1_batched_noop_recorder", |b| {
        b.iter_batched(
            || engine_with(MetricsHandle::noop()),
            |mut e| {
                run(&mut e, &data);
                e
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("engine_rate1_batched_in_memory_recorder", |b| {
        b.iter_batched(
            || engine_with(MetricsHandle::new(Arc::new(InMemoryRecorder::new()))),
            |mut e| {
                run(&mut e, &data);
                e
            },
            BatchSize::LargeInput,
        )
    });

    // Flight recorder attached (metrics disabled): every seal and collapse
    // pushes a structured event — with collapse provenance, so several
    // slots per collapse — into the per-thread ring, each stamped with a
    // clock read. The journal outlives the engine so the ring keeps its
    // claimed slot across iterations (the steady-state shape).
    let journal = Arc::new(EventJournal::new());
    group.bench_function("engine_rate1_batched_journal_attached", |b| {
        b.iter_batched(
            || {
                let mut e = engine_with(MetricsHandle::disabled());
                e.set_journal(JournalHandle::new(Arc::clone(&journal)));
                e
            },
            |mut e| {
                run(&mut e, &data);
                e
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
