//! Benchmarks of the §6 machinery: end-to-end parallel runs at varying
//! worker counts, the serial sketch merge, and the coordinator's
//! shrink-by-sampling path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use mrl_core::{OptimizerOptions, UnknownN};
use mrl_parallel::{merge_sketches, parallel_quantiles};

const N_TOTAL: u64 = 1_000_000;

fn data() -> Vec<u64> {
    (0..N_TOTAL).map(|i| (i * 2654435761) % 1_000_003).collect()
}

fn bench_parallel_workers(c: &mut Criterion) {
    let all = data();
    let opts = OptimizerOptions::default();
    let mut group = c.benchmark_group("parallel_quantiles_1m");
    group.throughput(Throughput::Elements(N_TOTAL));
    group.sample_size(10);
    for &p in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", p), &p, |b, &p| {
            b.iter_batched(
                || {
                    (0..p)
                        .map(|w| all.iter().skip(w).step_by(p).copied().collect::<Vec<u64>>())
                        .collect::<Vec<_>>()
                },
                |inputs| parallel_quantiles(inputs, 0.02, 0.001, &[0.5], opts, 1),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_serial_merge(c: &mut Criterion) {
    let all = data();
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(0.02, 0.001, OptimizerOptions::default());
    let mut group = c.benchmark_group("merge_sketches");
    group.sample_size(10);
    group.bench_function("merge_4_prebuilt_sketches", |b| {
        b.iter_batched(
            || {
                (0..4usize)
                    .map(|w| {
                        let mut s = UnknownN::<u64>::from_config(config.clone(), w as u64);
                        s.extend(all.iter().skip(w).step_by(4).copied());
                        s
                    })
                    .collect::<Vec<_>>()
            },
            |sketches| merge_sketches(sketches, 7),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_workers, bench_serial_merge);
criterion_main!(benches);
