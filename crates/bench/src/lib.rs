//! Experiment harness: everything the table/figure binaries share.
//!
//! One binary per paper artefact (see DESIGN.md §4):
//!
//! | binary            | artefact |
//! |-------------------|----------|
//! | `table1`          | Table 1 — unknown-`N` vs known-`N` memory |
//! | `table2`          | Table 2 — memory vs number of quantiles |
//! | `fig4`            | Figure 4 — memory vs `log₁₀ N` |
//! | `fig5`            | Figure 5 — valid buffer-allocation schedule |
//! | `table_extreme`   | §7 — extreme-value sample/heap sizes + validation |
//! | `tree_shapes`     | Figures 2–3 — collapse-tree shapes |
//! | `accuracy`        | headline guarantee across distributions & orders |
//! | `policy_ablation` | collapse-policy comparison (adaptive/MP/ARS) |
//! | `parallel_eval`   | §6 — parallel accuracy and memory |
//! | `alpha_sweep`     | ablation: the α error split (§4.4 vs §4.5) |
//! | `h_sweep`         | ablation: the sampling-onset height h |
//! | `crossover`       | MRL99 vs reservoir memory across ε (§2.2) |
//! | `prefix_validity` | guarantee at every prefix under drift (§1.2) |
//! | `baselines_compare` | vs GMP97 and CMN98 (§1.5 related work) |
//! | `comparisons`     | comparison counts (§2's cost metric) |
//! | `all_experiments` | run everything above in sequence |
//!
//! Each binary prints an aligned text table; set `MRL_JSON=1` to also emit
//! machine-readable JSON lines on stderr.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod counting;
pub mod eval;
pub mod table;

pub use eval::{failure_rate, observed_errors, ErrorSummary, Trial};
pub use table::TextTable;

/// True when the environment requests JSON side-channel output.
pub fn json_enabled() -> bool {
    std::env::var("MRL_JSON").is_ok_and(|v| v == "1")
}

/// Emit one JSON line on stderr when enabled.
pub fn emit_json<S: serde::Serialize>(value: &S) {
    if json_enabled() {
        eprintln!(
            "{}",
            serde_json::to_string(value).expect("experiment rows serialise")
        );
    }
}
