//! Comparison counting: the paper's §2 frames selection in *number of
//! comparisons* ([BFP+73]'s 5.43N, Pohl's lower bounds, Paterson's
//! survey). [`Counting`] wraps an element type and counts every `Ord`
//! comparison through a thread-local counter, letting experiments report
//! comparisons-per-element for the streaming sketch against sort-based
//! selection.

use std::cell::Cell;
use std::cmp::Ordering;

thread_local! {
    static COMPARISONS: Cell<u64> = const { Cell::new(0) };
}

/// Reset this thread's comparison counter.
pub fn reset_comparisons() {
    COMPARISONS.with(|c| c.set(0));
}

/// Comparisons performed on this thread since the last reset.
pub fn comparisons() -> u64 {
    COMPARISONS.with(Cell::get)
}

/// An element wrapper whose `Ord` increments the thread-local comparison
/// counter.
#[derive(Clone, Copy, Debug)]
pub struct Counting<T>(pub T);

impl<T: PartialEq> PartialEq for Counting<T> {
    fn eq(&self, other: &Self) -> bool {
        COMPARISONS.with(|c| c.set(c.get() + 1));
        self.0 == other.0
    }
}

impl<T: Eq> Eq for Counting<T> {}

impl<T: Ord> PartialOrd for Counting<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Counting<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        COMPARISONS.with(|c| c.set(c.get() + 1));
        self.0.cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_comparisons_in_a_sort() {
        reset_comparisons();
        // Scrambled input (a reversed run would let the sort cheat with a
        // single detected run and ~n comparisons).
        let mut v: Vec<Counting<u32>> = (0..256u32).map(|i| Counting((i * 167) % 256)).collect();
        v.sort();
        let c = comparisons();
        // Sorting n scrambled elements needs ~n·log2(n)-ish comparisons
        // and far fewer than n^2.
        assert!(c > 256, "suspiciously few comparisons: {c}");
        assert!(c < 65_536, "suspiciously many comparisons: {c}");
    }

    #[test]
    fn reset_zeroes_the_counter() {
        reset_comparisons();
        let _ = Counting(1u32) < Counting(2u32);
        assert!(comparisons() >= 1);
        reset_comparisons();
        assert_eq!(comparisons(), 0);
    }
}
