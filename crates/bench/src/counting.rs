//! Comparison counting: the paper's §2 frames selection in *number of
//! comparisons* ([BFP+73]'s 5.43N, Pohl's lower bounds, Paterson's
//! survey). [`Counting`] wraps an element type and counts every `Ord`
//! comparison, letting experiments report comparisons-per-element for the
//! streaming sketch against sort-based selection.
//!
//! The counts flow through the workspace observability layer rather than
//! a bespoke cell: each thread owns an [`InMemoryRecorder`] and the
//! wrapper publishes to it via a [`MetricsHandle`], so the experiment
//! binaries read comparisons from the same `Recorder` abstraction the
//! engine and pipeline publish their metrics to. [`reset_comparisons`] /
//! [`comparisons`] keep the original API, and [`comparison_recorder`]
//! exposes the underlying recorder for richer reporting (snapshots,
//! merging into an experiment-wide export).

use std::cmp::Ordering;
use std::sync::Arc;

use mrl_obs::{InMemoryRecorder, Key, MetricsHandle};

/// Counter key the wrapper publishes under.
pub const COMPARISONS: Key = Key::new("bench.comparisons");

thread_local! {
    static SINK: (Arc<InMemoryRecorder>, MetricsHandle) = {
        let recorder = Arc::new(InMemoryRecorder::new());
        let handle = MetricsHandle::new(recorder.clone());
        (recorder, handle)
    };
}

/// Reset this thread's comparison counter.
pub fn reset_comparisons() {
    SINK.with(|(recorder, _)| recorder.reset());
}

/// Comparisons performed on this thread since the last reset.
pub fn comparisons() -> u64 {
    SINK.with(|(recorder, _)| recorder.counter_value(COMPARISONS))
}

/// This thread's comparison recorder — the full `Recorder` view of the
/// same counter (`bench.comparisons`), for snapshot/export-style reports.
pub fn comparison_recorder() -> Arc<InMemoryRecorder> {
    SINK.with(|(recorder, _)| recorder.clone())
}

#[inline]
fn bump() {
    SINK.with(|(_, handle)| handle.counter_add(COMPARISONS, 1));
}

/// An element wrapper whose `Ord` publishes every comparison to this
/// thread's recorder.
#[derive(Clone, Copy, Debug)]
pub struct Counting<T>(pub T);

impl<T: PartialEq> PartialEq for Counting<T> {
    fn eq(&self, other: &Self) -> bool {
        bump();
        self.0 == other.0
    }
}

impl<T: Eq> Eq for Counting<T> {}

impl<T: Ord> PartialOrd for Counting<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Counting<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        bump();
        self.0.cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_comparisons_in_a_sort() {
        reset_comparisons();
        // Scrambled input (a reversed run would let the sort cheat with a
        // single detected run and ~n comparisons).
        let mut v: Vec<Counting<u32>> = (0..256u32).map(|i| Counting((i * 167) % 256)).collect();
        v.sort();
        let c = comparisons();
        // Sorting n scrambled elements needs ~n·log2(n)-ish comparisons
        // and far fewer than n^2.
        assert!(c > 256, "suspiciously few comparisons: {c}");
        assert!(c < 65_536, "suspiciously many comparisons: {c}");
    }

    #[test]
    fn reset_zeroes_the_counter() {
        reset_comparisons();
        let _ = Counting(1u32) < Counting(2u32);
        assert!(comparisons() >= 1);
        reset_comparisons();
        assert_eq!(comparisons(), 0);
    }

    #[test]
    fn counts_are_visible_through_the_recorder() {
        reset_comparisons();
        let mut v: Vec<Counting<u32>> = (0..64u32).map(|i| Counting((i * 37) % 64)).collect();
        v.sort();
        let recorder = comparison_recorder();
        assert_eq!(recorder.counter_value(COMPARISONS), comparisons());
        let snapshot = recorder.snapshot();
        assert_eq!(
            snapshot.counters.get("bench.comparisons").copied(),
            Some(comparisons())
        );
        assert_eq!(snapshot.dropped, 0);
    }
}
