//! Minimal aligned-text-table printer for experiment output.

/// Builds and prints an aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render with right-aligned numeric-ish columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align everything but the first column.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a memory size in elements as the paper does (e.g. `4.84K`).
pub fn fmt_k(elements: usize) -> String {
    if elements >= 1000 {
        format!("{:.2}K", elements as f64 / 1000.0)
    } else {
        format!("{elements}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["eps", "memory"]);
        t.row(["0.01", "4.84K"]);
        t.row(["0.001", "77.10K"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("eps"));
        assert!(lines[2].ends_with("4.84K"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt_k_formats() {
        assert_eq!(fmt_k(500), "500");
        assert_eq!(fmt_k(4840), "4.84K");
    }
}
