//! **Table 2**: memory required when `p` quantiles are requested
//! simultaneously (δ → δ/p, §4.7), and the pre-computation upper bound
//! that is independent of `p` (compute `⌈1/ε⌉` quantiles at guarantee
//! ε/2).
//!
//! Paper claims to reproduce: "the amount of main memory required grows
//! slowly as a function of p" (O(log log p)) and "pre-computation requires
//! significantly more memory" (the ε/2 guarantee dominates).

use mrl_analysis::optimizer::optimize_unknown_n_with;
use mrl_bench::table::fmt_k;
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    p: u64,
    memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let delta = 0.0001f64;
    let epsilons = [0.1, 0.05, 0.01, 0.005, 0.001];
    let ps: [u64; 4] = [1, 10, 100, 1000];

    println!("Table 2: memory (elements) for p simultaneous quantiles, delta = {delta}\n");
    let mut header: Vec<String> = vec!["epsilon".into()];
    header.extend(ps.iter().map(|p| format!("p={p}")));
    header.push("precompute (any p)".into());
    let mut table = TextTable::new(header);

    for &eps in &epsilons {
        let mut cells: Vec<String> = vec![format!("{eps}")];
        for &p in &ps {
            let cfg = optimize_unknown_n_with(eps, delta / p as f64, opts);
            cells.push(fmt_k(cfg.memory));
            emit_json(&Row {
                epsilon: eps,
                p,
                memory: cfg.memory,
            });
        }
        let pre = {
            let grid = (1.0 / eps).ceil() as u64;
            let cfg = optimize_unknown_n_with(eps / 2.0, delta / grid as f64, opts);
            cfg.memory
        };
        cells.push(fmt_k(pre));
        emit_json(&Row {
            epsilon: eps,
            p: u64::MAX,
            memory: pre,
        });
        table.row(cells);
    }
    table.print();
    println!("\nShape checks: memory grows slowly in p (delta enters only via log log);");
    println!("the precompute column exceeds small-p columns (epsilon/2 dominates).");
}
