//! **Figure 5**: a valid buffer-allocation schedule whose memory stays
//! within user-specified ceilings at every stream length, for ε = 0.01,
//! δ = 0.0001 (§5).
//!
//! The user ceilings interpolate between the known-`N` curve and a final
//! budget above the unconstrained unknown-`N` optimum; the search returns a
//! valid schedule whose profile hugs them.

use mrl_analysis::optimizer::{known_n_memory, optimize_unknown_n_with};
use mrl_analysis::schedule::{find_schedule, MemoryLimit};
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: u64,
    schedule_memory: usize,
    ceiling: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.0001);
    let base = optimize_unknown_n_with(eps, delta, opts);
    println!("Figure 5: valid buffer-allocation schedule, epsilon = {eps}, delta = {delta}");
    println!("Unconstrained unknown-N memory: {} elements\n", base.memory);

    // User ceilings: a fraction of full memory early, full memory plus
    // slack later (the paper's user curve sits above known-N and below the
    // upfront unknown-N allocation for small N). Early ceilings leave room
    // for at least three buffers — with fewer, the pre-onset tree
    // degenerates into a deep path and no schedule can certify.
    let limits = [
        MemoryLimit {
            n: 20_000,
            max_memory: (base.memory * 5) / 8,
        },
        MemoryLimit {
            n: 200_000,
            max_memory: (base.memory * 7) / 8,
        },
        MemoryLimit {
            n: u64::MAX / 2,
            max_memory: base.memory * 2,
        },
    ];
    println!("User-specified ceilings:");
    for l in &limits {
        println!("  while N <= {:>12}: memory <= {}", l.n, l.max_memory);
    }
    println!();

    match find_schedule(eps, delta, &limits, opts) {
        None => println!(
            "No valid schedule meets these ceilings (the paper: \"There may or may not \
             be a valid buffer schedule that meets these upper limits.\")"
        ),
        Some(plan) => {
            println!(
                "Found: b = {}, k = {}, h = {}, alpha = {:.3}, final memory = {}\n",
                plan.b,
                plan.k,
                plan.h,
                plan.alpha,
                plan.memory()
            );
            let mut table =
                TextTable::new(["N (elements)", "allocated memory", "ceiling", "known-N"]);
            for (n_at, mem) in plan.memory_profile() {
                let ceiling = limits
                    .iter()
                    .filter(|l| l.n >= n_at)
                    .map(|l| l.max_memory)
                    .min()
                    .unwrap_or(usize::MAX);
                let known = known_n_memory(eps, delta, n_at.max(1));
                table.row([
                    format!("{n_at}"),
                    format!("{mem}"),
                    format!("{ceiling}"),
                    format!("{known}"),
                ]);
                emit_json(&Row {
                    n: n_at,
                    schedule_memory: mem,
                    ceiling,
                });
            }
            table.print();
            println!("\nShape check: every allocated-memory value sits at or below its ceiling;");
            println!("memory grows with N instead of being allocated up front.");
        }
    }
}
