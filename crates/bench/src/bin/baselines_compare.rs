//! **Related-work comparison** (§1.5): MRL99 vs the two baselines the
//! paper cites — GMP97 split/merge equi-depth histograms and CMN98 block
//! sampling — at comparable memory, on random and clustered (sorted)
//! arrival orders.
//!
//! Shapes to reproduce: GMP97 balances buckets but gives no per-quantile
//! rank guarantee (visible as larger/more variable errors); CMN98 matches
//! tuple sampling on random order but collapses on clustered data
//! ("possibly requires multiple passes"); MRL99 holds ε on both.

use mrl_baselines::{BlockSampling, GmpHistogram};
use mrl_bench::{emit_json, TextTable};
use mrl_core::UnknownN;
use mrl_datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl_exact::rank_error;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    estimator: String,
    order: String,
    max_err: f64,
    memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.001);
    let config = mrl_analysis::optimizer::optimize_unknown_n_with(eps, delta, opts);
    let n = if cfg!(debug_assertions) {
        300_000u64
    } else {
        1_000_000
    };
    let phis = [0.1, 0.25, 0.5, 0.75, 0.9];
    let mem = config.memory;

    println!(
        "Related-work comparison at ~equal memory ({mem} elements), N = {n}, \
         epsilon = {eps}\n"
    );
    let mut table = TextTable::new(["estimator", "arrival", "max rank err", "memory"]);

    for order in [ArrivalOrder::Random, ArrivalOrder::SortedAscending] {
        let data = Workload {
            values: ValueDistribution::Uniform { range: 1 << 30 },
            order,
            n,
            seed: 21,
        }
        .generate();

        // MRL99.
        let mut sketch = UnknownN::<u64>::from_config(config.clone(), 1);
        sketch.extend(data.iter().copied());
        let mrl_err = phis
            .iter()
            .map(|&p| rank_error(&data, &sketch.query(p).unwrap(), p))
            .fold(0.0f64, f64::max);

        // GMP97: bucket budget ~ 1/eps style, backing sample sized to the
        // same memory budget.
        let mut gmp = GmpHistogram::new(100, 0.5, mem.saturating_sub(101).max(200), 1);
        gmp.extend(data.iter().copied());
        let gmp_err = phis
            .iter()
            .map(|&p| rank_error(&data, &gmp.quantile(p).unwrap(), p))
            .fold(0.0f64, f64::max);

        // CMN98: same memory split into blocks of 64.
        let blocks = (mem / 64).max(1);
        let mut cmn = BlockSampling::new(blocks, 64, 1);
        cmn.extend(data.iter().copied());
        let cmn_err = phis
            .iter()
            .map(|&p| rank_error(&data, &cmn.quantile(p).unwrap(), p))
            .fold(0.0f64, f64::max);

        for (name, err, memory) in [
            ("MRL99 unknown-N", mrl_err, mem),
            ("GMP97 split/merge", gmp_err, mem),
            ("CMN98 block sampling", cmn_err, cmn.memory_elements()),
        ] {
            table.row([
                name.to_string(),
                order.label().to_string(),
                format!("{err:.5}"),
                format!("{memory}"),
            ]);
            emit_json(&Row {
                estimator: name.to_string(),
                order: order.label().to_string(),
                max_err: err,
                memory,
            });
        }
    }
    table.print();
    println!(
        "\nShape checks: MRL99 <= epsilon on both orders; CMN98 fine on random \
         arrival but degraded on sorted (clustered blocks); GMP97 in between \
         (different error metric, no rank guarantee)."
    );
}
