//! **Figure 4**: memory requirements of the known-`N` and unknown-`N`
//! algorithms as `N` varies, at ε = 0.01, δ = 0.0001.
//!
//! Shape to reproduce: the unknown-`N` algorithm uses a constant amount of
//! space regardless of `N`, while the known-`N` algorithm "can take
//! advantage of the fact that sampling need not be carried out for small
//! values of N and save on memory" — its curve rises with `log₁₀ N` and
//! plateaus below the unknown-`N` line once sampling engages.

use mrl_analysis::optimizer::{known_n_memory, optimize_unknown_n_with};
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    log10_n: u32,
    known_memory: usize,
    unknown_memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.0001);
    let unknown = optimize_unknown_n_with(eps, delta, opts);

    println!("Figure 4: memory vs log10(N), epsilon = {eps}, delta = {delta}\n");
    let mut table = TextTable::new(["log10(N)", "known-N memory", "unknown-N memory"]);
    let mut curve = Vec::new();
    for log_n in 3..=12u32 {
        let n = 10u64.pow(log_n);
        let known = known_n_memory(eps, delta, n);
        table.row([
            format!("{log_n}"),
            format!("{known}"),
            format!("{}", unknown.memory),
        ]);
        emit_json(&Row {
            log10_n: log_n,
            known_memory: known,
            unknown_memory: unknown.memory,
        });
        curve.push(known);
    }
    table.print();

    // ASCII rendition of the figure.
    println!("\n{}", ascii_plot(&curve, unknown.memory));
    println!("Shape checks: unknown-N flat; known-N non-decreasing then flat;");
    println!("known-N plateau sits at or below the unknown-N line.");
}

/// Plot the two curves as rows of '#' (known-N) against a '|' marker for
/// the unknown-N constant.
fn ascii_plot(known: &[usize], unknown: usize) -> String {
    let max = known.iter().copied().max().unwrap_or(1).max(unknown) as f64;
    let width = 60.0;
    let mut out = String::new();
    for (i, &m) in known.iter().enumerate() {
        let bar = ((m as f64 / max) * width).round() as usize;
        let marker = ((unknown as f64 / max) * width).round() as usize;
        let mut line: Vec<char> = vec![' '; (width as usize) + 2];
        for c in line.iter_mut().take(bar) {
            *c = '#';
        }
        if marker < line.len() {
            line[marker] = '|';
        }
        out.push_str(&format!(
            "10^{:>2} {} {}\n",
            i + 3,
            line.into_iter().collect::<String>(),
            m
        ));
    }
    out.push_str("      ('#' known-N memory, '|' unknown-N constant)\n");
    out
}
