//! **Ablation: the error split α** (DESIGN.md B2 family).
//!
//! The paper's §4.4 space-complexity proof fixes α = 0.5; §4.5 instead
//! optimises α per configuration. This sweep shows what the optimisation
//! buys: required memory `b·k` as a function of a *forced* α, against the
//! optimizer's free choice.

use mrl_analysis::bounds::required_x;
use mrl_analysis::optimizer::optimize_unknown_n_with;
use mrl_analysis::simulate::{simulate_schedule_cached, SimOptions};
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    alpha: f64,
    k: usize,
    memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.0001);
    let free = optimize_unknown_n_with(eps, delta, opts);
    println!(
        "Alpha ablation at epsilon = {eps}, delta = {delta}: the optimizer chose \
         b = {}, h = {}, alpha = {:.3}, memory = {}\n",
        free.b, free.h, free.alpha, free.memory
    );

    // Fix the optimizer's (b, h) and sweep alpha.
    let scalars = simulate_schedule_cached(
        free.b,
        free.h,
        SimOptions {
            leaf_cap: opts.leaf_cap,
            ..SimOptions::default()
        },
    )
    .expect("the chosen configuration certifies");

    let mut table = TextTable::new(["alpha", "required k", "memory bk"]);
    for i in 1..=19 {
        let alpha = i as f64 * 0.05;
        let k_pre = scalars.g_pre / eps;
        let k_post = scalars.g_post / (alpha * eps);
        let k_sample = required_x(alpha, eps, delta) / scalars.x_min;
        let k = k_pre.max(k_post).max(k_sample).ceil() as usize;
        let memory = free.b * k;
        table.row([format!("{alpha:.2}"), format!("{k}"), format!("{memory}")]);
        emit_json(&Row { alpha, k, memory });
    }
    table.print();
    println!(
        "\nShape checks: memory is U-shaped in alpha (tree error explodes as \
         alpha -> 0, sampling error as alpha -> 1); the paper's fixed alpha = 0.5 \
         sits near but not at the bottom; the optimizer's alpha = {:.3} gives {}.",
        free.alpha, free.memory
    );
}
