//! **Figures 2–3**: the collapse trees the paper draws.
//!
//! Figure 2: the tree formed with b = 5 buffers when every `New` runs at
//! rate 1 (no sampling; node labels are weights). Figure 3: the tree for a
//! weighted φ-quantile of samples — the same policy once the non-uniform
//! schedule has engaged, with level-`i` leaves of weight `2^i`.

use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate, Mrl99Schedule};

fn main() {
    println!("Figure 2: collapse tree, b = 5 buffers, sampling rate fixed at 1");
    println!("(each node labelled [w=weight Llevel kind])\n");
    let k = 4usize;
    let mut det: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(5, k),
        AdaptiveLowestLevel,
        FixedRate::new(1),
        1,
    );
    det.enable_tree_recording();
    // Enough input to collapse a few levels: ~30 leaves.
    for i in 0..(30 * k as u64) {
        det.insert(i);
    }
    let rec = det.recorder().expect("recording enabled");
    print!("{}", rec.render(&det.root_nodes()));
    println!(
        "leaves: {}, collapses: {}, height: {}\n",
        det.stats().leaves,
        det.stats().collapses,
        det.stats().max_level
    );

    println!("Figure 3: the tree for computing a weighted phi-quantile of samples");
    println!("(b = 5, onset level h = 2; leaf weights double per level)\n");
    let mut sam: Engine<u64, _, _> = Engine::new(
        EngineConfig::new(5, k),
        AdaptiveLowestLevel,
        Mrl99Schedule::new(2),
        1,
    );
    sam.enable_tree_recording();
    let mut i = 0u64;
    while sam.stats().max_level < 5 {
        sam.insert(i);
        i += 1;
    }
    let rec = sam.recorder().expect("recording enabled");
    print!("{}", rec.render(&sam.root_nodes()));
    println!(
        "elements: {}, leaves: {}, final sampling rate: {}, height: {}",
        sam.n(),
        sam.stats().leaves,
        sam.current_rate(),
        sam.stats().max_level
    );
    println!("\nShape checks: leaf weights are 1 below the onset level, then 2, 4, 8, ...;");
    println!("every collapse node's weight equals the sum of its children's.");
}
