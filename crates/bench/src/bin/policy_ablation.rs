//! **Ablation**: the three collapse policies of the framework (§2.1, §3.6)
//! at identical `(b, k)` — tree accounting (`W`, collapses, height) and
//! observed rank error. The adaptive lowest-level policy is what the
//! MRL99 analysis assumes; Munro–Paterson and Alsabti–Ranka–Singh are the
//! antecedents it generalises.

use mrl_bench::{emit_json, TextTable};
use mrl_datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl_exact::rank_error;
use mrl_framework::{
    AdaptiveLowestLevel, AlsabtiRankaSingh, CollapsePolicy, Engine, EngineConfig, FixedRate,
    MunroPaterson,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    collapses: u64,
    w_sum: u64,
    height: u32,
    bound: u64,
    max_err: f64,
}

fn run_policy<P: CollapsePolicy>(policy: P, b: usize, k: usize, data: &[u64], phis: &[f64]) -> Row {
    let name = policy.name().to_string();
    let mut e = Engine::new(EngineConfig::new(b, k), policy, FixedRate::new(1), 11);
    for &v in data {
        e.insert(v);
    }
    let mut max_err = 0.0f64;
    for &phi in phis {
        let ans = e.query(phi).expect("nonempty");
        max_err = max_err.max(rank_error(data, &ans, phi));
    }
    Row {
        policy: name,
        collapses: e.stats().collapses,
        w_sum: e.stats().collapse_weight_sum,
        height: e.stats().max_level,
        bound: e.tree_error_bound(),
        max_err,
    }
}

fn main() {
    let (b, k) = (5usize, 100usize);
    let n = if cfg!(debug_assertions) {
        200_000
    } else {
        1_000_000
    };
    let data = Workload {
        values: ValueDistribution::Uniform { range: 1 << 30 },
        order: ArrivalOrder::Random,
        n,
        seed: 31,
    }
    .generate();
    let phis = [0.1, 0.25, 0.5, 0.75, 0.9];

    println!("Collapse-policy ablation: b = {b}, k = {k}, N = {n} (deterministic, rate 1)\n");
    let mut table = TextTable::new([
        "policy",
        "collapses",
        "W",
        "height",
        "Lemma-4 bound",
        "max obs. err",
    ]);
    for row in [
        run_policy(AdaptiveLowestLevel, b, k, &data, &phis),
        run_policy(MunroPaterson, b, k, &data, &phis),
        run_policy(AlsabtiRankaSingh, b, k, &data, &phis),
    ] {
        table.row([
            row.policy.clone(),
            format!("{}", row.collapses),
            format!("{}", row.w_sum),
            format!("{}", row.height),
            format!("{}", row.bound),
            format!("{:.5}", row.max_err),
        ]);
        emit_json(&row);
    }
    table.print();
    println!("\nShape checks: observed error <= Lemma-4 bound / N for every policy;");
    println!("the adaptive policy's W (and so its bound) undercuts ARS at equal memory.");
}
