//! **Prefix validity under distribution drift** — the unknown-`N`
//! property in action.
//!
//! The paper motivates unknown-`N` with histograms of dynamically growing
//! tables (§1.2): "Such a histogram should be accurate at all times
//! irrespective of the current size of the table." The adversarial case is
//! a table whose value distribution *drifts*: any sketch that froze a
//! uniform sample early keeps answering from a stale distribution. This
//! experiment runs a drifting stream, querying the sketch and a same-memory
//! frozen-sample baseline at many prefixes, and scores both against the
//! exact quantile of the prefix.

use mrl_bench::{emit_json, TextTable};
use mrl_datagen::DriftingStream;
use mrl_exact::rank_error;
use mrl_sampling::{rng_from_seed, Reservoir};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prefix: u64,
    mrl_error: f64,
    frozen_error: f64,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.001);
    let config = mrl_analysis::optimizer::optimize_unknown_n_with(eps, delta, opts);
    let n: u64 = if cfg!(debug_assertions) {
        300_000
    } else {
        2_000_000
    };
    let phi = 0.5;

    println!(
        "Prefix validity under drift: mean moves 10_000 -> 90_000 over N = {n}; \
         phi = {phi}, epsilon = {eps}\n"
    );

    let mut sketch = mrl_core::UnknownN::<u64>::from_config(config.clone(), 5);
    // Baseline: a uniform sample of the same memory, FROZEN after the
    // first config.memory elements (a sample taken "once, up front" — what
    // a system does when it believes it knows the table).
    let mut frozen: Vec<u64> = Vec::with_capacity(config.memory);
    let mut rng = rng_from_seed(5);
    let mut frozen_res = Reservoir::<u64>::new(config.memory);

    let mut seen: Vec<u64> = Vec::with_capacity(n as usize);
    let mut table = TextTable::new(["prefix N", "MRL99 err", "frozen-sample err"]);
    let checkpoints: Vec<u64> = (1..=10).map(|i| i * n / 10).collect();

    for (i, v) in DriftingStream::new(10_000.0, 90_000.0, 5_000.0, n, 77)
        .take(n as usize)
        .enumerate()
    {
        let i = i as u64 + 1;
        sketch.insert(v);
        seen.push(v);
        // The frozen baseline only samples the first `memory` elements.
        if i <= config.memory as u64 {
            frozen_res.offer(v, &mut rng);
            if i == config.memory as u64 {
                frozen = frozen_res.sample().to_vec();
                frozen.sort_unstable();
            }
        }
        if checkpoints.contains(&i) {
            let mrl_ans = sketch.query(phi).expect("nonempty");
            let mrl_err = rank_error(&seen, &mrl_ans, phi);
            let frozen_ans = if frozen.is_empty() {
                // Prefix still within the sampling window: exact.
                let mut sorted = seen.clone();
                sorted.sort_unstable();
                sorted[((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1]
            } else {
                frozen[((phi * frozen.len() as f64).ceil() as usize).clamp(1, frozen.len()) - 1]
            };
            let frozen_err = rank_error(&seen, &frozen_ans, phi);
            table.row([
                format!("{i}"),
                format!("{mrl_err:.5}"),
                format!("{frozen_err:.5}"),
            ]);
            emit_json(&Row {
                prefix: i,
                mrl_error: mrl_err,
                frozen_error: frozen_err,
            });
        }
    }
    table.print();
    println!(
        "\nShape checks: the MRL99 column stays <= epsilon = {eps} at every prefix; \
         the frozen-sample column degrades towards ~0.5 as the drift leaves the \
         early sample behind."
    );
}
