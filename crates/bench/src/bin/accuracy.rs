//! **Accuracy validation** of the headline guarantee: observed rank error
//! vs ε, and failure rate vs δ, across value distributions and arrival
//! orders (the paper's §1.3 data-independence requirement), at several
//! stream lengths.
//!
//! Also runs the reservoir-sampling baseline (§2.2) at the same memory to
//! show what the non-uniform scheme buys.

use mrl_bench::eval::{failure_rate, observed_errors};
use mrl_bench::{emit_json, TextTable};
use mrl_datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl_exact::rank_error;
use mrl_sampling::{rng_from_seed, Reservoir};

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.001);
    let config = mrl_analysis::optimizer::optimize_unknown_n_with(eps, delta, opts);
    let phis = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
    let trials = if cfg!(debug_assertions) { 3u64 } else { 10 };

    println!(
        "Accuracy validation: epsilon = {eps}, delta = {delta}, config b={} k={} h={} (bk = {})",
        config.b, config.k, config.h, config.memory
    );
    println!("{} quantiles x {trials} seeds per workload\n", phis.len());

    let distributions = [
        ValueDistribution::Uniform { range: 1 << 30 },
        ValueDistribution::Normal {
            mean: 1e6,
            sigma: 2e5,
        },
        ValueDistribution::Zipf { n: 100_000, s: 1.1 },
        ValueDistribution::Exponential { scale: 1e5 },
        ValueDistribution::FewDistinct { distinct: 17 },
    ];
    let orders = [
        ArrivalOrder::Random,
        ArrivalOrder::SortedAscending,
        ArrivalOrder::SortedDescending,
        ArrivalOrder::OrganPipe,
    ];
    let n = if cfg!(debug_assertions) {
        200_000
    } else {
        1_000_000
    };

    let mut table = TextTable::new(["workload", "trials", "mean err", "max err", "fail rate"]);
    let mut worst: f64 = 0.0;
    for dist in &distributions {
        for order in &orders {
            let workload = Workload {
                values: *dist,
                order: *order,
                n,
                seed: 7,
            };
            let ts = observed_errors(&workload, &config, &phis, 0..trials);
            let summary = failure_rate(&ts, eps);
            worst = worst.max(summary.max_error);
            table.row([
                summary.workload.clone(),
                format!("{}", summary.trials),
                format!("{:.5}", summary.mean_error),
                format!("{:.5}", summary.max_error),
                format!("{:.3}", summary.failure_rate),
            ]);
            emit_json(&summary);
        }
    }
    table.print();
    println!(
        "\nWorst observed error anywhere: {worst:.5} (guarantee: {eps} with prob {})",
        1.0 - delta
    );

    // Reservoir baseline at the *same memory budget*.
    println!(
        "\nReservoir-sampling baseline (section 2.2) at the same memory ({} elements):",
        config.memory
    );
    let workload = Workload {
        values: ValueDistribution::Uniform { range: 1 << 30 },
        order: ArrivalOrder::Random,
        n,
        seed: 7,
    };
    let data = workload.generate();
    let mut table = TextTable::new(["estimator", "max err over phis/seeds"]);
    let mut res_max = 0.0f64;
    for seed in 0..trials {
        let mut rng = rng_from_seed(seed);
        let mut res = Reservoir::new(config.memory);
        for &v in &data {
            res.offer(v, &mut rng);
        }
        for &phi in &phis {
            let ans = res.quantile(phi).expect("nonempty");
            res_max = res_max.max(rank_error(&data, &ans, phi));
        }
    }
    let mut mrl_max = 0.0f64;
    let ts = observed_errors(&workload, &config, &phis, 0..trials);
    for t in &ts {
        mrl_max = mrl_max.max(t.error);
    }
    table.row(["MRL99 unknown-N".to_string(), format!("{mrl_max:.5}")]);
    table.row([
        "reservoir (same memory)".to_string(),
        format!("{res_max:.5}"),
    ]);
    table.print();
    println!("\nShape check: at equal memory the reservoir's guarantee is the weaker");
    println!("(its epsilon scales as 1/sqrt(memory); MRL99's roughly as 1/memory).");
}
