//! **Table 1**: number of buffers `b`, buffer size `k`, and total memory
//! `b·k` required by the unknown-`N` algorithm for a grid of (ε, δ), next
//! to the memory of the known-`N` algorithm (MRL98, with `N` large enough
//! to warrant sampling — the paper's setting for the comparison columns).
//!
//! Paper claim to reproduce: "The new algorithm requires no more than
//! twice the memory required by the old one" (§4.6).

use mrl_analysis::optimizer::{known_n_memory, optimize_unknown_n_with};
use mrl_bench::table::fmt_k;
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    delta: f64,
    b: usize,
    k: usize,
    unknown_memory: usize,
    known_memory: usize,
    ratio: f64,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let epsilons = [0.1, 0.05, 0.01, 0.005, 0.001];
    let deltas = [0.01, 0.001, 0.0001];

    println!("Table 1: unknown-N algorithm parameters and memory vs the known-N algorithm");
    println!("(memory in elements; known-N assumes N large enough to warrant sampling)\n");
    let mut table = TextTable::new([
        "epsilon",
        "delta",
        "b",
        "k",
        "bk (unknown-N)",
        "known-N",
        "ratio",
    ]);
    for &eps in &epsilons {
        for &delta in &deltas {
            let u = optimize_unknown_n_with(eps, delta, opts);
            let known = known_n_memory(eps, delta, u64::MAX);
            let ratio = u.memory as f64 / known as f64;
            table.row([
                format!("{eps}"),
                format!("{delta}"),
                format!("{}", u.b),
                format!("{}", u.k),
                fmt_k(u.memory),
                fmt_k(known),
                format!("{ratio:.2}"),
            ]);
            emit_json(&Row {
                epsilon: eps,
                delta,
                b: u.b,
                k: u.k,
                unknown_memory: u.memory,
                known_memory: known,
                ratio,
            });
        }
    }
    table.print();
    println!("\nShape check (paper section 4.6): unknown-N memory within 2x of known-N.");
}
