//! Headline throughput harness: elements/sec for the batched engine
//! ingest→seal→collapse path across sampling rates 1–64, emitted as a
//! single self-describing `BENCH_throughput.json`.
//!
//! Every PR that touches the hot path reruns this and compares medians;
//! the JSON records the toolchain, core count and commit alongside the
//! numbers so cross-session comparisons are explicit about what changed
//! (the comparability gap called out by BENCH_collapse.json).
//!
//! ```text
//! cargo run --release -p mrl-bench --bin throughput -- [--smoke] \
//!     [--queries] [--label NAME] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the stream and run count for CI signal-of-life runs;
//! `--queries` additionally benchmarks the read path (repeated
//! `query_many` + `cdf` against a built sketch, epoch-cached spine vs the
//! cache force-disabled) and records queries/sec in the JSON; `--label`
//! tags the report (e.g. `baseline` / `this_pr`) so two runs can be
//! merged into one A/B file; `--out` writes JSON to a file instead of
//! stdout only; `--trace PATH` writes a chrome-trace (Perfetto-loadable)
//! JSON of the journal-attached rate-1 run's flight-recorder events.
//!
//! Every report also carries a `journal` section: interleaved rate-1
//! pairs with the flight recorder detached vs attached, so the recorder's
//! ingest overhead is re-measured in the same session as the headline
//! numbers.

use std::sync::Arc;
use std::time::Instant;

use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate};
use mrl_obs::{EventJournal, JournalHandle};

use mrl_datagen::{ValueDistribution, WorkloadStream};

/// The rates the harness sweeps; rate 1 is the headline number.
const RATES: &[u64] = &[1, 2, 4, 8, 16, 32, 64];
/// Matches `insert_batch_1m/engine_rate1_batched` in benches/throughput.rs.
const NUM_BUFFERS: usize = 5;
const BUFFER_SIZE: usize = 256;
const CHUNK: usize = 1024;

struct Args {
    smoke: bool,
    queries: bool,
    label: String,
    out: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        queries: false,
        label: "current".to_string(),
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--queries" => args.queries = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--out" => args.out = Some(it.next().expect("--out needs a value")),
            "--trace" => args.trace = Some(it.next().expect("--trace needs a value")),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: throughput [--smoke] [--queries] [--label NAME] [--out PATH] \
                     [--trace PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn stream(n: usize) -> Vec<u64> {
    WorkloadStream::new(ValueDistribution::Uniform { range: 1 << 40 }, 7)
        .take(n)
        .collect()
}

/// One timed end-to-end run: build the engine, feed the stream in 1024-
/// element batches, return elapsed milliseconds. The engine construction
/// sits inside the timer deliberately — it is O(b·k) and identical across
/// builds — so the measurement matches a cold start-to-drained pipeline.
fn run_once(data: &[u64], rate: u64) -> f64 {
    let started = Instant::now();
    let mut engine = Engine::new(
        EngineConfig::new(NUM_BUFFERS, BUFFER_SIZE),
        AdaptiveLowestLevel,
        FixedRate::new(rate),
        1,
    );
    for chunk in data.chunks(CHUNK) {
        engine.insert_batch(chunk);
    }
    let ms = started.elapsed().as_secs_f64() * 1e3;
    // Keep the engine observable so the loop cannot be optimised away.
    std::hint::black_box(engine.n());
    ms
}

/// As [`run_once`] with the flight recorder attached: every seal and
/// collapse (with provenance) lands in the journal's per-thread ring, and
/// the whole ingest is wrapped in an `ingest` span so the exported trace
/// has a top-level track entry.
fn run_once_journaled(data: &[u64], rate: u64, journal: &JournalHandle) -> f64 {
    let started = Instant::now();
    let mut engine = Engine::new(
        EngineConfig::new(NUM_BUFFERS, BUFFER_SIZE),
        AdaptiveLowestLevel,
        FixedRate::new(rate),
        1,
    );
    engine.set_journal(journal.clone());
    {
        let _span = journal.span("ingest");
        for chunk in data.chunks(CHUNK) {
            engine.insert_batch(chunk);
        }
    }
    let ms = started.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(engine.n());
    ms
}

/// The φ grid of one query round: ten spread quantiles plus a repeated
/// median, matching a dashboard's refresh pattern.
const QUERY_PHIS: &[f64] = &[
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 0.5,
];

/// One timed read-path run: `rounds` rounds of `query_many` over the φ
/// grid plus one `cdf` export each, against an already-built sketch.
/// Returns elapsed milliseconds.
fn run_queries(engine: &Engine<u64, AdaptiveLowestLevel, FixedRate>, rounds: usize) -> f64 {
    let started = Instant::now();
    for _ in 0..rounds {
        std::hint::black_box(engine.query_many(QUERY_PHIS));
        std::hint::black_box(engine.cdf().len());
    }
    started.elapsed().as_secs_f64() * 1e3
}

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

#[derive(serde::Serialize)]
struct RateResult {
    rate: u64,
    runs_ms: Vec<f64>,
    min_ms: f64,
    median_ms: f64,
    max_ms: f64,
    elements_per_sec_median: f64,
}

#[derive(serde::Serialize)]
struct Meta {
    label: String,
    toolchain: String,
    nproc: usize,
    commit: String,
    unix_time: u64,
    n: usize,
    chunk: usize,
    num_buffers: usize,
    buffer_size: usize,
    runs_per_rate: usize,
    smoke: bool,
    profile: &'static str,
}

#[derive(serde::Serialize)]
struct QueryModeResult {
    /// `cached` (epoch-cached spine, the default read path) or
    /// `uncached` (cache force-disabled: every read re-merges).
    mode: &'static str,
    runs_ms: Vec<f64>,
    median_ms: f64,
    /// Quantile lookups + CDF exports per second: each round is
    /// `QUERY_PHIS.len()` quantile queries plus one `cdf`.
    queries_per_sec_median: f64,
}

#[derive(serde::Serialize)]
struct QuerySection {
    description: String,
    sketch_n: usize,
    phis_per_round: usize,
    rounds_per_run: usize,
    runs: usize,
    results: Vec<QueryModeResult>,
    /// Cached-spine speedup over the uncached path (median over median).
    cached_speedup_median: f64,
}

#[derive(serde::Serialize)]
struct JournalSection {
    description: String,
    rate: u64,
    interleaved_pairs: usize,
    detached_runs_ms: Vec<f64>,
    attached_runs_ms: Vec<f64>,
    detached_median_ms: f64,
    attached_median_ms: f64,
    detached_min_ms: f64,
    attached_min_ms: f64,
    /// `(attached_min / detached_min − 1) · 100` — supplementary: the
    /// ratio of each variant's fastest run. Jumpier than the paired
    /// median at this pair count (one lucky run moves it), but useful as
    /// a floor-vs-floor cross-check.
    min_overhead_pct: f64,
    /// Per-pair `(attached / detached − 1) · 100`, one entry per
    /// back-to-back pair (execution order alternates to cancel drift).
    pair_overheads_pct: Vec<f64>,
    /// Median of `pair_overheads_pct`: the flight recorder's ingest
    /// overhead at rate 1 (acceptance bar: < 5%). The paired statistic —
    /// not a ratio of the two medians — because a 20 ms ingest spans
    /// scheduler ticks and individual runs carry large preemption noise;
    /// pairing runs back-to-back and taking the median ratio over ~20
    /// pairs outvotes the hiccups on both sides.
    overhead_pct: f64,
    /// Events still resident in the ring after the last attached run.
    events_captured: usize,
    /// Events overwritten across the section: the journal deliberately
    /// outlives all attached runs (its final drain feeds `--trace`), so
    /// with ~14k events per run cycling through one fixed ring, all but
    /// the newest ring-full are overwritten by design.
    events_lost: u64,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    meta: Meta,
    results: Vec<RateResult>,
    /// Same-session interleaved A/B of the flight recorder at rate 1.
    journal: JournalSection,
    /// `null` unless the run passed `--queries`.
    query_throughput: Option<QuerySection>,
}

fn main() {
    let args = parse_args();
    let (n, runs, warmup) = if args.smoke {
        (100_000usize, 2usize, 0usize)
    } else {
        (1_000_000usize, 7usize, 1usize)
    };
    let data = stream(n);

    let mut results = Vec::new();
    for &rate in RATES {
        for _ in 0..warmup {
            run_once(&data, rate);
        }
        let mut runs_ms: Vec<f64> = (0..runs).map(|_| run_once(&data, rate)).collect();
        let mut sorted = runs_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median_ms = sorted[sorted.len() / 2];
        let min_ms = sorted[0];
        let max_ms = sorted[sorted.len() - 1];
        // Round for the report after computing the summary.
        for v in &mut runs_ms {
            *v = (*v * 1000.0).round() / 1000.0;
        }
        eprintln!(
            "rate {rate:>3}: median {median_ms:8.3} ms  [{min_ms:.3}, {max_ms:.3}]  \
             {:>12.0} elems/s",
            n as f64 / (median_ms / 1e3)
        );
        results.push(RateResult {
            rate,
            runs_ms,
            min_ms,
            median_ms,
            max_ms,
            elements_per_sec_median: n as f64 / (median_ms / 1e3),
        });
    }

    // Flight-recorder A/B: interleaved detached/attached rate-1 pairs, so
    // both variants see the same thermal and cache conditions. The journal
    // outlives the loop; the final drain feeds `--trace`.
    let journal_store = Arc::new(EventJournal::new());
    let journal_handle = JournalHandle::new(Arc::clone(&journal_store));
    journal_handle.name_thread("harness", None);
    let journal = {
        // Several times the per-rate run count (made odd for a clean
        // median): the min estimator below needs enough runs per variant
        // for at least one of each to dodge preemption entirely.
        let pairs = runs * 3 + 1;
        for _ in 0..warmup {
            run_once(&data, 1);
            run_once_journaled(&data, 1, &journal_handle);
        }
        let mut detached_runs_ms = Vec::with_capacity(pairs);
        let mut attached_runs_ms = Vec::with_capacity(pairs);
        for i in 0..pairs {
            // Alternate execution order within the pair so any systematic
            // first-vs-second bias (turbo ramp, cache residue) cancels
            // across pairs instead of loading onto one variant.
            if i % 2 == 0 {
                detached_runs_ms.push(run_once(&data, 1));
                attached_runs_ms.push(run_once_journaled(&data, 1, &journal_handle));
            } else {
                attached_runs_ms.push(run_once_journaled(&data, 1, &journal_handle));
                detached_runs_ms.push(run_once(&data, 1));
            }
        }
        let median = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.total_cmp(b));
            s[s.len() / 2]
        };
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let detached_median_ms = median(&detached_runs_ms);
        let attached_median_ms = median(&attached_runs_ms);
        let detached_min_ms = min(&detached_runs_ms);
        let attached_min_ms = min(&attached_runs_ms);
        let mut pair_overheads_pct: Vec<f64> = detached_runs_ms
            .iter()
            .zip(&attached_runs_ms)
            .map(|(d, a)| (a / d - 1.0) * 100.0)
            .collect();
        let overhead_pct = median(&pair_overheads_pct);
        let min_overhead_pct = (attached_min_ms / detached_min_ms - 1.0) * 100.0;
        for v in detached_runs_ms
            .iter_mut()
            .chain(&mut attached_runs_ms)
            .chain(&mut pair_overheads_pct)
        {
            *v = (*v * 1000.0).round() / 1000.0;
        }
        let dump = journal_store.drain();
        eprintln!(
            "journal rate 1: detached median {detached_median_ms:.3} ms, attached median \
             {attached_median_ms:.3} ms ({overhead_pct:+.1}% paired-median overhead, \
             {min_overhead_pct:+.1}% by min, {} events resident)",
            dump.event_count()
        );
        JournalSection {
            description: format!(
                "Flight-recorder ingest overhead at rate 1 over the same {n}-element \
                 stream: {pairs} back-to-back pairs of run_once (journal detached) vs \
                 run_once_journaled (journal attached: every seal/collapse journalled \
                 with provenance and timestamps, ingest wrapped in a span), execution \
                 order alternating; overhead_pct is the median per-pair ratio."
            ),
            rate: 1,
            interleaved_pairs: pairs,
            detached_runs_ms,
            attached_runs_ms,
            detached_median_ms,
            attached_median_ms,
            detached_min_ms,
            attached_min_ms,
            min_overhead_pct,
            pair_overheads_pct,
            overhead_pct,
            events_captured: dump.event_count(),
            events_lost: dump.lost(),
        }
    };
    if let Some(path) = &args.trace {
        let trace = mrl_obs::export::perfetto::to_chrome_trace(&journal_store);
        std::fs::write(path, trace).expect("write trace");
        eprintln!("wrote chrome trace to {path} (open in https://ui.perfetto.dev)");
    }

    let meta = Meta {
        label: args.label,
        toolchain: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        nproc: std::thread::available_parallelism().map_or(0, |p| p.get()),
        commit: command_line("git", &["rev-parse", "--short", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        n,
        chunk: CHUNK,
        num_buffers: NUM_BUFFERS,
        buffer_size: BUFFER_SIZE,
        runs_per_rate: runs,
        smoke: args.smoke,
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    };
    let query_throughput = if args.queries {
        let (rounds, q_runs, q_warmup) = if args.smoke {
            (50usize, 2usize, 0usize)
        } else {
            (2_000usize, 7usize, 1usize)
        };
        let mut engine = Engine::new(
            EngineConfig::new(NUM_BUFFERS, BUFFER_SIZE),
            AdaptiveLowestLevel,
            FixedRate::new(1),
            1,
        );
        for chunk in data.chunks(CHUNK) {
            engine.insert_batch(chunk);
        }
        let queries_per_run = (rounds * (QUERY_PHIS.len() + 1)) as f64;
        let mut medians = [0.0f64; 2];
        let mut mode_results = Vec::new();
        for (slot, (mode, cached)) in [("uncached", false), ("cached", true)]
            .into_iter()
            .enumerate()
        {
            engine.set_query_cache_enabled(cached);
            for _ in 0..q_warmup {
                run_queries(&engine, rounds);
            }
            let mut runs_ms: Vec<f64> = (0..q_runs).map(|_| run_queries(&engine, rounds)).collect();
            let mut sorted = runs_ms.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let median_ms = sorted[sorted.len() / 2];
            medians[slot] = median_ms;
            for v in &mut runs_ms {
                *v = (*v * 1000.0).round() / 1000.0;
            }
            let qps = queries_per_run / (median_ms / 1e3);
            eprintln!("queries {mode:>8}: median {median_ms:8.3} ms  {qps:>12.0} queries/s");
            mode_results.push(QueryModeResult {
                mode,
                runs_ms,
                median_ms,
                queries_per_sec_median: qps,
            });
        }
        let speedup = medians[0] / medians[1];
        eprintln!("queries: cached spine speedup {speedup:.1}x over uncached");
        Some(QuerySection {
            description: format!(
                "Read path against a built {n}-element rate-1 sketch: each round is one \
                 query_many over {} phis plus one cdf export; `cached` serves from the \
                 epoch-cached spine, `uncached` has the cache force-disabled so every \
                 read re-runs the direct weighted merge.",
                QUERY_PHIS.len()
            ),
            sketch_n: n,
            phis_per_round: QUERY_PHIS.len(),
            rounds_per_run: rounds,
            runs: q_runs,
            results: mode_results,
            cached_speedup_median: speedup,
        })
    } else {
        None
    };

    let report = Report {
        description: format!(
            "End-to-end batched ingest (Engine b={NUM_BUFFERS} k={BUFFER_SIZE}, \
             AdaptiveLowestLevel, FixedRate r, {CHUNK}-element insert_batch chunks) over a \
             {n}-element uniform u64 stream; rate 1 is the headline number tracked across \
             PRs. Reproduce: cargo run --release -p mrl-bench --bin throughput"
        ),
        meta,
        results,
        journal,
        query_throughput,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("write report");
        eprintln!("wrote {path}");
    } else {
        println!("{json}");
    }
}
