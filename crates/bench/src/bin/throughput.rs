//! Headline throughput harness: elements/sec for the batched engine
//! ingest→seal→collapse path across sampling rates 1–64, emitted as a
//! single self-describing `BENCH_throughput.json`.
//!
//! Every PR that touches the hot path reruns this and compares medians;
//! the JSON records the toolchain, core count and commit alongside the
//! numbers so cross-session comparisons are explicit about what changed
//! (the comparability gap called out by BENCH_collapse.json).
//!
//! ```text
//! cargo run --release -p mrl-bench --bin throughput -- [--smoke] \
//!     [--label NAME] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the stream and run count for CI signal-of-life runs;
//! `--label` tags the report (e.g. `baseline` / `this_pr`) so two runs can
//! be merged into one A/B file; `--out` writes JSON to a file instead of
//! stdout only.

use std::time::Instant;

use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate};

use mrl_datagen::{ValueDistribution, WorkloadStream};

/// The rates the harness sweeps; rate 1 is the headline number.
const RATES: &[u64] = &[1, 2, 4, 8, 16, 32, 64];
/// Matches `insert_batch_1m/engine_rate1_batched` in benches/throughput.rs.
const NUM_BUFFERS: usize = 5;
const BUFFER_SIZE: usize = 256;
const CHUNK: usize = 1024;

struct Args {
    smoke: bool,
    label: String,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        label: "current".to_string(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--out" => args.out = Some(it.next().expect("--out needs a value")),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: throughput [--smoke] [--label NAME] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn stream(n: usize) -> Vec<u64> {
    WorkloadStream::new(ValueDistribution::Uniform { range: 1 << 40 }, 7)
        .take(n)
        .collect()
}

/// One timed end-to-end run: build the engine, feed the stream in 1024-
/// element batches, return elapsed milliseconds. The engine construction
/// sits inside the timer deliberately — it is O(b·k) and identical across
/// builds — so the measurement matches a cold start-to-drained pipeline.
fn run_once(data: &[u64], rate: u64) -> f64 {
    let started = Instant::now();
    let mut engine = Engine::new(
        EngineConfig::new(NUM_BUFFERS, BUFFER_SIZE),
        AdaptiveLowestLevel,
        FixedRate::new(rate),
        1,
    );
    for chunk in data.chunks(CHUNK) {
        engine.insert_batch(chunk);
    }
    let ms = started.elapsed().as_secs_f64() * 1e3;
    // Keep the engine observable so the loop cannot be optimised away.
    std::hint::black_box(engine.n());
    ms
}

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

#[derive(serde::Serialize)]
struct RateResult {
    rate: u64,
    runs_ms: Vec<f64>,
    min_ms: f64,
    median_ms: f64,
    max_ms: f64,
    elements_per_sec_median: f64,
}

#[derive(serde::Serialize)]
struct Meta {
    label: String,
    toolchain: String,
    nproc: usize,
    commit: String,
    unix_time: u64,
    n: usize,
    chunk: usize,
    num_buffers: usize,
    buffer_size: usize,
    runs_per_rate: usize,
    smoke: bool,
    profile: &'static str,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    meta: Meta,
    results: Vec<RateResult>,
}

fn main() {
    let args = parse_args();
    let (n, runs, warmup) = if args.smoke {
        (100_000usize, 2usize, 0usize)
    } else {
        (1_000_000usize, 7usize, 1usize)
    };
    let data = stream(n);

    let mut results = Vec::new();
    for &rate in RATES {
        for _ in 0..warmup {
            run_once(&data, rate);
        }
        let mut runs_ms: Vec<f64> = (0..runs).map(|_| run_once(&data, rate)).collect();
        let mut sorted = runs_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median_ms = sorted[sorted.len() / 2];
        let min_ms = sorted[0];
        let max_ms = sorted[sorted.len() - 1];
        // Round for the report after computing the summary.
        for v in &mut runs_ms {
            *v = (*v * 1000.0).round() / 1000.0;
        }
        eprintln!(
            "rate {rate:>3}: median {median_ms:8.3} ms  [{min_ms:.3}, {max_ms:.3}]  \
             {:>12.0} elems/s",
            n as f64 / (median_ms / 1e3)
        );
        results.push(RateResult {
            rate,
            runs_ms,
            min_ms,
            median_ms,
            max_ms,
            elements_per_sec_median: n as f64 / (median_ms / 1e3),
        });
    }

    let meta = Meta {
        label: args.label,
        toolchain: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        nproc: std::thread::available_parallelism().map_or(0, |p| p.get()),
        commit: command_line("git", &["rev-parse", "--short", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        n,
        chunk: CHUNK,
        num_buffers: NUM_BUFFERS,
        buffer_size: BUFFER_SIZE,
        runs_per_rate: runs,
        smoke: args.smoke,
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    };
    let report = Report {
        description: format!(
            "End-to-end batched ingest (Engine b={NUM_BUFFERS} k={BUFFER_SIZE}, \
             AdaptiveLowestLevel, FixedRate r, {CHUNK}-element insert_batch chunks) over a \
             {n}-element uniform u64 stream; rate 1 is the headline number tracked across \
             PRs. Reproduce: cargo run --release -p mrl-bench --bin throughput"
        ),
        meta,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("write report");
        eprintln!("wrote {path}");
    } else {
        println!("{json}");
    }
}
