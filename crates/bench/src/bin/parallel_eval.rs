//! **§6 validation**: parallel runs at P ∈ {1, 2, 4, 8} workers — accuracy
//! of the merged result and the per-worker / coordinator memory bounds.

use mrl_bench::{emit_json, TextTable};
use mrl_datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl_exact::rank_error;
use mrl_parallel::parallel_quantiles;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workers: usize,
    total_n: u64,
    max_err: f64,
    worker_memory: usize,
    coordinator_memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.02, 0.001);
    let n_total = if cfg!(debug_assertions) {
        400_000u64
    } else {
        2_000_000
    };
    let phis = [0.1, 0.5, 0.9];

    println!(
        "Parallel evaluation (section 6): epsilon = {eps}, delta = {delta}, total N = {n_total}\n"
    );
    let data = Workload {
        values: ValueDistribution::Exponential { scale: 1e5 },
        order: ArrivalOrder::Random,
        n: n_total,
        seed: 99,
    }
    .generate();

    let mut table = TextTable::new([
        "workers",
        "total N",
        "max obs. err",
        "worker mem",
        "coord mem",
    ]);
    for &p in &[1usize, 2, 4, 8] {
        // Slice the stream across workers (value-range independent split).
        let inputs: Vec<Vec<u64>> = (0..p)
            .map(|w| data.iter().skip(w).step_by(p).copied().collect())
            .collect();
        let out =
            parallel_quantiles(inputs, eps, delta, &phis, opts, 123).expect("nonempty inputs");
        let mut max_err = 0.0f64;
        for (q, phi) in out.quantiles.iter().zip(phis) {
            max_err = max_err.max(rank_error(&data, q, phi));
        }
        table.row([
            format!("{p}"),
            format!("{}", out.total_n),
            format!("{max_err:.5}"),
            format!("{}", out.worker_memory_elements),
            format!("{}", out.coordinator_memory_elements),
        ]);
        emit_json(&Row {
            workers: p,
            total_n: out.total_n,
            max_err,
            worker_memory: out.worker_memory_elements,
            coordinator_memory: out.coordinator_memory_elements,
        });
    }
    table.print();
    println!("\nShape checks: error stays within ~epsilon at every P (the paper's");
    println!("+h' height slack covers the extra coordinator collapses); memory per");
    println!("node is the single-stream bound — communication is one shipment per worker.");
}
