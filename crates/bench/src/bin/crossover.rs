//! **Crossover: MRL99 vs reservoir sampling** — where does the
//! sophisticated scheme start to pay? (§2.2: the reservoir's
//! `O(ε⁻² log δ⁻¹)` sample "makes the scheme impractical for small values
//! of ε"; MRL99 is `~ε⁻¹ log²`.)
//!
//! This sweep prints both memory requirements across ε and locates the
//! crossover, the concrete version of the paper's asymptotic argument.

use mrl_analysis::optimizer::optimize_unknown_n_with;
use mrl_bench::table::fmt_k;
use mrl_bench::{emit_json, TextTable};
use mrl_sampling::reservoir_sample_size;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    mrl_memory: usize,
    reservoir_memory: u64,
    ratio: f64,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let delta = 0.0001f64;
    println!("MRL99 vs reservoir sampling memory, delta = {delta}\n");
    let mut table = TextTable::new(["epsilon", "MRL99 bk", "reservoir s", "reservoir/MRL"]);
    let mut crossover: Option<f64> = None;
    let mut prev_ratio = 0.0f64;
    for &eps in &[0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001] {
        let mrl = optimize_unknown_n_with(eps, delta, opts).memory;
        let res = reservoir_sample_size(eps, delta);
        let ratio = res as f64 / mrl as f64;
        if prev_ratio < 1.0 && ratio >= 1.0 {
            crossover = Some(eps);
        }
        prev_ratio = ratio;
        table.row([
            format!("{eps}"),
            fmt_k(mrl),
            fmt_k(res as usize),
            format!("{ratio:.1}x"),
        ]);
        emit_json(&Row {
            epsilon: eps,
            mrl_memory: mrl,
            reservoir_memory: res,
            ratio,
        });
    }
    table.print();
    match crossover {
        Some(eps) => println!(
            "\nCrossover: MRL99 wins from epsilon ~ {eps} downward; at epsilon = 0.001 \
             the reservoir needs orders of magnitude more memory (the paper's \
             'impractical for small epsilon')."
        ),
        None => println!(
            "\nMRL99's memory is below the reservoir's across the whole sweep \
             (the reservoir's quadratic 1/eps^2 loses even at loose epsilon here)."
        ),
    }
}
