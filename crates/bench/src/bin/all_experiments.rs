//! Run every experiment binary in sequence — the one-command reproduction
//! of the paper's evaluation (`cargo run --release -p mrl-bench --bin
//! all_experiments`). Each child's stdout is passed through with a banner;
//! a summary of exit statuses is printed at the end.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig4",
    "fig5",
    "table_extreme",
    "tree_shapes",
    "accuracy",
    "policy_ablation",
    "parallel_eval",
    "alpha_sweep",
    "h_sweep",
    "crossover",
    "prefix_validity",
    "baselines_compare",
    "comparisons",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();

    for name in EXPERIMENTS {
        println!("\n{}", "=".repeat(74));
        println!("== {name}");
        println!("{}", "=".repeat(74));
        let path = bin_dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo (e.g. when run via `cargo run` from a
            // clean target dir).
            Command::new("cargo")
                .args([
                    "run",
                    "--quiet",
                    "--release",
                    "-p",
                    "mrl-bench",
                    "--bin",
                    name,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("** {name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("** {name} failed to launch: {e}");
                failures.push(*name);
            }
        }
    }

    println!("\n{}", "=".repeat(74));
    if failures.is_empty() {
        println!(
            "All {} experiments completed. Paper-vs-measured notes: EXPERIMENTS.md",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
