//! **Comparison counts** — the cost metric of the paper's §2 antecedents
//! ([BFP+73]: ≤ 5.43N comparisons for exact selection; Pohl: a one-pass
//! exact median needs N/2 stored elements; Yao: deterministic
//! approximation needs Ω(N) comparisons, beaten by randomization).
//!
//! Measures comparisons per element for: the MRL99 sketch (insert-only,
//! then with a query), exact sort-select, BFPRT, and quickselect.

use mrl_bench::counting::{comparisons, reset_comparisons, Counting};
use mrl_bench::{emit_json, TextTable};
use mrl_core::UnknownN;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    comparisons_per_element: f64,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let n: u64 = if cfg!(debug_assertions) {
        200_000
    } else {
        1_000_000
    };
    let data: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 1_000_003).collect();
    let config = mrl_analysis::optimizer::optimize_unknown_n_with(0.01, 1e-4, opts);

    println!("Comparison counts per element, N = {n} (epsilon = 0.01 for the sketch)\n");
    let mut table = TextTable::new(["method", "comparisons / element"]);
    let mut record = |name: &str, total: u64| {
        let per = total as f64 / n as f64;
        table.row([name.to_string(), format!("{per:.2}")]);
        emit_json(&Row {
            method: name.to_string(),
            comparisons_per_element: per,
        });
    };

    // MRL99 streaming sketch: inserts only.
    reset_comparisons();
    let mut sketch = UnknownN::<Counting<u64>>::from_config(config.clone(), 1);
    for &v in &data {
        sketch.insert(Counting(v));
    }
    record("MRL99 insert (streaming)", comparisons());

    // Plus one median query on top.
    reset_comparisons();
    let _ = sketch.query(0.5);
    let query_cost = comparisons();
    println!("(a single median query costs {query_cost} comparisons — independent of N)\n");

    // Exact selection baselines.
    reset_comparisons();
    {
        let mut v: Vec<Counting<u64>> = data.iter().map(|&x| Counting(x)).collect();
        v.sort_unstable();
        let _ = v[v.len() / 2];
    }
    record("sort + index (exact)", comparisons());

    reset_comparisons();
    {
        let v: Vec<Counting<u64>> = data.iter().map(|&x| Counting(x)).collect();
        let _ = mrl_exact::bfprt_select(v, (n / 2) as usize);
    }
    record("BFPRT median-of-medians (exact)", comparisons());

    reset_comparisons();
    {
        let v: Vec<Counting<u64>> = data.iter().map(|&x| Counting(x)).collect();
        let mut rng = mrl_sampling::rng_from_seed(1);
        let _ = mrl_exact::quickselect(v, (n / 2) as usize, &mut rng);
    }
    record("randomized quickselect (exact)", comparisons());

    table.print();
    println!(
        "\nShape checks: the sketch's per-element cost is O(log(bk)) — a small \
         constant, below sorting's log N; BFPRT sits near its ~5N bound \
         ([BFP+73] proves <= 5.43N); quickselect averages ~3-4N."
    );
}
