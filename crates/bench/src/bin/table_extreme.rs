//! **§7 (extreme values)**: Stein's-lemma sample sizes `s` and retained
//! heap sizes `k = ⌈φ·s⌉` for extreme quantiles, against the memory the
//! general unknown-`N` algorithm would need — plus an empirical check that
//! the estimator meets its (ε, δ) guarantee.
//!
//! Shape to reproduce: "random sampling is quantifiably better when
//! estimating extreme values than is the case with the median" — the heap
//! `k` is orders of magnitude below the general algorithm's `b·k` when φ
//! is small.

use mrl_analysis::kl::stein_sample_size;
use mrl_analysis::optimizer::optimize_unknown_n_with;
use mrl_bench::{emit_json, TextTable};
use mrl_core::{ExtremeValue, Tail};
use mrl_datagen::{ArrivalOrder, ValueDistribution, Workload};
use mrl_exact::rank_error;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    phi: f64,
    epsilon: f64,
    sample_s: u64,
    heap_k: u64,
    general_memory: usize,
    observed_max_error: f64,
    observed_failures: usize,
    trials: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let delta = 0.0001f64;
    let cases = [
        (0.001, 0.0005),
        (0.005, 0.001),
        (0.01, 0.002),
        (0.01, 0.005),
        (0.05, 0.01),
    ];
    let n = 400_000u64;
    let trials = 40u64;

    println!("Extreme-value estimation (section 7), delta = {delta}");
    println!("(validation: {trials} seeded trials on a uniform stream of N = {n})\n");
    let mut table = TextTable::new([
        "phi",
        "epsilon",
        "sample s",
        "heap k",
        "general alg.",
        "max err",
        "fails",
    ]);

    let workload = Workload {
        values: ValueDistribution::Uniform { range: 1 << 30 },
        order: ArrivalOrder::Random,
        n,
        seed: 2024,
    };
    let data = workload.generate();

    for &(phi, eps) in &cases {
        let (s, k) = stein_sample_size(phi, eps, delta);
        let general = optimize_unknown_n_with(eps, delta, opts).memory;

        let mut max_err = 0.0f64;
        let mut failures = 0usize;
        for seed in 0..trials {
            let mut est = ExtremeValue::<u64>::known_n(phi, eps, delta, n, Tail::Low, seed);
            est.extend(data.iter().copied());
            if let Some(ans) = est.query() {
                let err = rank_error(&data, &ans, phi);
                max_err = max_err.max(err);
                if err > eps {
                    failures += 1;
                }
            } else {
                failures += 1;
            }
        }

        table.row([
            format!("{phi}"),
            format!("{eps}"),
            format!("{s}"),
            format!("{k}"),
            format!("{general}"),
            format!("{max_err:.5}"),
            format!("{failures}/{trials}"),
        ]);
        emit_json(&Row {
            phi,
            epsilon: eps,
            sample_s: s,
            heap_k: k,
            general_memory: general,
            observed_max_error: max_err,
            observed_failures: failures,
            trials: trials as usize,
        });
    }
    table.print();
    println!("\nShape checks: heap k << general-algorithm memory for small phi;");
    println!("zero (or ~delta-rate) failures across trials.");

    // The paper's statistical fact: extreme quantiles need smaller samples
    // than the median at the same (epsilon, delta).
    let (s_extreme, _) = stein_sample_size(0.01, 0.005, delta);
    let (s_median, _) = stein_sample_size(0.5, 0.005, delta);
    println!(
        "\nSample size at (eps=0.005, delta={delta}): phi=0.01 needs s={s_extreme}, \
         phi=0.5 needs s={s_median} ({}x more for the median).",
        s_median / s_extreme.max(1)
    );
}
