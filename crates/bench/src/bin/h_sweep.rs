//! **Ablation: the sampling-onset height h** (DESIGN.md B2 family).
//!
//! `h` controls how long the algorithm stays deterministic before the
//! non-uniform sampling engages (§3.7). Small `h`: sampling starts early,
//! the Hoeffding mass `X` is small, so `k` must grow. Large `h`: the
//! deterministic tree is deep, so the tree-error constraint forces `k` up
//! instead (Eqn 3: `h ≲ 2εk`). The optimizer picks the valley.

use mrl_analysis::optimizer::{optimize_unknown_n_with, OptimizerOptions};
use mrl_analysis::simulate::{simulate_schedule_cached, SimOptions};
use mrl_bench::{emit_json, TextTable};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    b: usize,
    h: u32,
    l_d: u64,
    k: usize,
    memory: usize,
}

fn main() {
    let opts = mrl_bench::eval::experiment_options();
    let (eps, delta) = (0.01, 0.0001);
    let free = optimize_unknown_n_with(eps, delta, opts);
    println!(
        "Onset-height ablation at epsilon = {eps}, delta = {delta} with b = {} \
         (the optimizer's choice; it picked h = {}):\n",
        free.b, free.h
    );

    let mut table = TextTable::new(["h", "L_d (leaves)", "required k", "memory bk"]);
    for h in 1..=opts.max_h {
        let Some(s) = simulate_schedule_cached(
            free.b,
            h,
            SimOptions {
                leaf_cap: opts.leaf_cap,
                ..SimOptions::default()
            },
        ) else {
            table.row([
                format!("{h}"),
                "— (over cap)".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        // Optimal alpha for this h via the same constraint algebra the
        // optimizer uses.
        let mut best_k = f64::INFINITY;
        let mut a = 0.01;
        while a < 1.0 {
            let k_post = s.g_post / (a * eps);
            let k_sample = mrl_analysis::bounds::required_x(a, eps, delta) / s.x_min;
            best_k = best_k.min((s.g_pre / eps).max(k_post).max(k_sample));
            a += 0.01;
        }
        let k = best_k.ceil() as usize;
        let memory = free.b * k;
        table.row([
            format!("{h}"),
            format!("{}", s.l_d),
            format!("{k}"),
            format!("{memory}"),
        ]);
        emit_json(&Row {
            b: free.b,
            h,
            l_d: s.l_d,
            k,
            memory,
        });
    }
    table.print();
    let _ = OptimizerOptions::default();
    println!(
        "\nShape checks: memory falls as h grows (more deterministic leaves = \
         more Hoeffding mass) until the tree-depth constraint bites; the \
         optimizer's h = {} sits at the valley.",
        free.h
    );
}
