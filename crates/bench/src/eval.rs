//! Accuracy evaluation: run a sketch over a workload, score observed rank
//! errors against the guarantee, and estimate failure rates over seeded
//! trials.

use mrl_core::{OptimizerOptions, UnknownN, UnknownNConfig};
use mrl_datagen::Workload;
use mrl_exact::rank_error;
use serde::Serialize;

/// One (workload, seed, φ) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Workload label (`distribution/order`).
    pub workload: String,
    /// Stream length.
    pub n: u64,
    /// Sketch seed.
    pub seed: u64,
    /// Queried quantile.
    pub phi: f64,
    /// Observed normalised rank error.
    pub error: f64,
}

/// Summary over a batch of trials.
#[derive(Clone, Debug, Serialize)]
pub struct ErrorSummary {
    /// Workload label.
    pub workload: String,
    /// Number of measurements.
    pub trials: usize,
    /// Mean observed error.
    pub mean_error: f64,
    /// Max observed error.
    pub max_error: f64,
    /// Fraction of measurements whose error exceeded ε.
    pub failure_rate: f64,
}

/// Run the unknown-`N` sketch over `workload` once per seed, querying each
/// φ, and return every measurement.
pub fn observed_errors(
    workload: &Workload,
    config: &UnknownNConfig,
    phis: &[f64],
    seeds: std::ops::Range<u64>,
) -> Vec<Trial> {
    let data = workload.generate();
    let mut out = Vec::new();
    for seed in seeds {
        let mut sketch = UnknownN::<u64>::from_config(config.clone(), seed);
        sketch.extend(data.iter().copied());
        let answers = sketch.query_many(phis).expect("nonempty stream");
        for (phi, ans) in phis.iter().zip(answers) {
            out.push(Trial {
                workload: workload.label(),
                n: workload.n,
                seed,
                phi: *phi,
                error: rank_error(&data, &ans, *phi),
            });
        }
    }
    out
}

/// Summarise trials against the guarantee ε.
pub fn failure_rate(trials: &[Trial], epsilon: f64) -> ErrorSummary {
    assert!(!trials.is_empty(), "no trials to summarise");
    let workload = trials[0].workload.clone();
    let n = trials.len();
    let mean = trials.iter().map(|t| t.error).sum::<f64>() / n as f64;
    let max = trials.iter().map(|t| t.error).fold(0.0f64, f64::max);
    let failures = trials.iter().filter(|t| t.error > epsilon).count();
    ErrorSummary {
        workload,
        trials: n,
        mean_error: mean,
        max_error: max,
        failure_rate: failures as f64 / n as f64,
    }
}

/// The optimizer options experiment binaries use: the full search space in
/// release builds, the reduced grid under `cfg(debug_assertions)` so `cargo
/// run` without `--release` stays responsive.
pub fn experiment_options() -> OptimizerOptions {
    if cfg!(debug_assertions) {
        OptimizerOptions::fast()
    } else {
        OptimizerOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_datagen::{ArrivalOrder, ValueDistribution};

    #[test]
    fn observed_errors_stay_within_epsilon_on_easy_workload() {
        let workload = Workload {
            values: ValueDistribution::Uniform { range: 1 << 20 },
            order: ArrivalOrder::Random,
            n: 100_000,
            seed: 5,
        };
        let config =
            mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, OptimizerOptions::fast());
        let trials = observed_errors(&workload, &config, &[0.5], 0..3);
        assert_eq!(trials.len(), 3);
        let summary = failure_rate(&trials, 0.05);
        assert_eq!(summary.failure_rate, 0.0, "summary: {summary:?}");
        assert!(summary.max_error <= 0.05);
    }
}
