//! Rank utilities: exact quantiles by sorting, rank intervals, and the
//! rank-error metric used throughout the evaluation.
//!
//! Following §1, the φ-quantile of a sequence of length `N` is the element
//! at position `⌈φ·N⌉` of the sorted sequence, and an ε-approximate
//! φ-quantile is any *element of the sequence* whose rank lies within
//! `[(φ−ε)·N, (φ+ε)·N]`.

/// Exact φ-quantile by sorting a copy: the element at 1-indexed position
/// `⌈φ·N⌉` (clamped to `[1, N]`) of the sorted data.
///
/// # Panics
/// Panics on empty data or `φ ∉ [0, 1]`.
pub fn exact_quantile<T: Ord + Clone>(data: &[T], phi: f64) -> T {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
    let mut sorted: Vec<T> = data.to_vec();
    sorted.sort_unstable();
    let pos = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[pos - 1].clone()
}

/// Exact selection of the 1-indexed rank `r` element by sorting.
///
/// # Panics
/// Panics if `r` is out of `[1, N]`.
pub fn sort_select<T: Ord + Clone>(data: &[T], r: usize) -> T {
    assert!(r >= 1 && r <= data.len(), "rank out of range");
    let mut sorted: Vec<T> = data.to_vec();
    sorted.sort_unstable();
    sorted[r - 1].clone()
}

/// The 1-indexed rank interval `[lo, hi]` that `value` occupies in the
/// sorted order of `data`: `lo` = 1 + #elements strictly below, `hi` =
/// #elements ≤ `value`. If `value` does not occur, `lo > hi` and the
/// interval is the empty gap where it would sit.
pub fn rank_interval<T: Ord>(data: &[T], value: &T) -> (u64, u64) {
    let below = data.iter().filter(|v| *v < value).count() as u64;
    let at_most = data.iter().filter(|v| *v <= value).count() as u64;
    (below + 1, at_most)
}

/// Normalised rank error of an approximate φ-quantile: the distance (in
/// ranks, divided by `N`) from the target position `⌈φ·N⌉` to the nearest
/// rank `value` occupies. Zero when the value's rank interval covers the
/// target.
pub fn rank_error<T: Ord>(data: &[T], value: &T, phi: f64) -> f64 {
    assert!(!data.is_empty(), "rank error on empty data");
    let n = data.len() as u64;
    let pos = ((phi * n as f64).ceil() as u64).clamp(1, n);
    let (lo, hi) = rank_interval(data, value);
    let dist = if hi < lo {
        // Value absent: its gap position is [lo-1, lo]; distance to pos.
        if pos < lo {
            lo - 1 - pos.min(lo - 1)
        } else {
            pos - (lo - 1).min(pos)
        }
    } else if pos < lo {
        lo - pos
    } else {
        pos.saturating_sub(hi)
    };
    dist as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantile_positions() {
        let data = [50u32, 10, 40, 20, 30];
        assert_eq!(exact_quantile(&data, 0.0), 10);
        assert_eq!(exact_quantile(&data, 0.2), 10);
        assert_eq!(exact_quantile(&data, 0.21), 20);
        assert_eq!(exact_quantile(&data, 0.5), 30);
        assert_eq!(exact_quantile(&data, 1.0), 50);
    }

    #[test]
    fn rank_interval_with_duplicates() {
        let data = [1u32, 2, 2, 2, 3];
        assert_eq!(rank_interval(&data, &2), (2, 4));
        assert_eq!(rank_interval(&data, &1), (1, 1));
        assert_eq!(rank_interval(&data, &3), (5, 5));
    }

    #[test]
    fn rank_interval_of_absent_value() {
        let data = [10u32, 20, 30];
        let (lo, hi) = rank_interval(&data, &25);
        assert!(hi < lo);
        assert_eq!(lo, 3); // two elements below it
    }

    #[test]
    fn rank_error_zero_within_interval() {
        let data = [1u32, 2, 2, 2, 3];
        // Median position 3 is a 2.
        assert_eq!(rank_error(&data, &2, 0.5), 0.0);
    }

    #[test]
    fn rank_error_counts_distance() {
        let data: Vec<u32> = (1..=100).collect();
        // Value 60 at phi=0.5: target rank 50, value rank 60 -> 10/100.
        assert!((rank_error(&data, &60, 0.5) - 0.10).abs() < 1e-12);
        assert!((rank_error(&data, &40, 0.5) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn sort_select_matches_quantile() {
        let data: Vec<u32> = (0..57).map(|i| (i * 37) % 101).collect();
        for r in [1, 5, 28, 57] {
            let v = sort_select(&data, r);
            let mut s = data.clone();
            s.sort_unstable();
            assert_eq!(v, s[r - 1]);
        }
    }
}
