//! Two-pass exact selection in sublinear memory (Munro–Paterson style).
//!
//! \[MP80\] shows `Θ(N^{1/p})` memory is necessary and sufficient for exact
//! selection in `p` passes. This module implements the classic randomized
//! two-pass scheme over re-iterable (e.g. disk-resident) data:
//!
//! 1. **Pass 1** draws a uniform sample of size `s` and brackets the target
//!    rank between two sample order statistics with a safety margin of
//!    `O(N/√s)` ranks (a Hoeffding bound puts the true element inside the
//!    bracket with high probability).
//! 2. **Pass 2** counts elements below the bracket and collects the
//!    elements inside it; the answer is read off the collected slice.
//!
//! If the bracket misses (rare) or overflows memory, the margin is widened
//! and the procedure retried — matching the expected-two-passes behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Exact selection of the 1-indexed rank `r` over re-iterable data using
/// `O(√N·polylog)` working memory in expectation.
///
/// `make_iter` must yield the same multiset on every call (two or more
/// passes are made).
///
/// # Panics
/// Panics if the data is empty or `r ∉ [1, N]`.
pub fn two_pass_select<T, F, I>(make_iter: F, r: u64, seed: u64) -> T
where
    T: Ord + Clone,
    F: Fn() -> I,
    I: Iterator<Item = T>,
{
    let n = make_iter().count() as u64;
    assert!(n > 0, "selection over empty data");
    assert!(r >= 1 && r <= n, "rank out of range");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Sample size ~ sqrt(N) keeps both the sample and the pass-2 bracket
    // at ~sqrt(N) expected size.
    let s = ((n as f64).sqrt().ceil() as u64).max(16).min(n);
    let mut margin_mult = 4.0f64;

    loop {
        // Pass 1: uniform sample by reservoir.
        let mut sample: Vec<T> = Vec::with_capacity(s as usize);
        for (i, item) in make_iter().enumerate() {
            let i = i as u64;
            if i < s {
                sample.push(item);
            } else {
                let j = rng.gen_range(0..=i);
                if j < s {
                    sample[j as usize] = item;
                }
            }
        }
        sample.sort_unstable();
        let s_actual = sample.len() as f64;
        // Sample position corresponding to rank r, with margin.
        let margin = margin_mult * s_actual.sqrt();
        let center = r as f64 / n as f64 * s_actual;
        let lo_idx = (center - margin).floor().max(0.0) as usize;
        let hi_idx = ((center + margin).ceil() as usize).min(sample.len() - 1);
        let lo_bracket = if lo_idx == 0 {
            None
        } else {
            Some(sample[lo_idx].clone())
        };
        let hi_bracket = if hi_idx + 1 >= sample.len() {
            None
        } else {
            Some(sample[hi_idx].clone())
        };

        // Pass 2: count below the bracket, collect inside it.
        let mut below = 0u64;
        let mut inside: Vec<T> = Vec::new();
        let cap = (16.0 * margin / s_actual * n as f64 + 64.0) as usize;
        let mut overflowed = false;
        for item in make_iter() {
            let under_lo = lo_bracket.as_ref().is_some_and(|lo| item < *lo);
            let over_hi = hi_bracket.as_ref().is_some_and(|hi| item > *hi);
            if under_lo {
                below += 1;
            } else if !over_hi {
                inside.push(item);
                if inside.len() > cap {
                    overflowed = true;
                    break;
                }
            }
        }
        if !overflowed && r > below && (r - below) as usize <= inside.len() {
            inside.sort_unstable();
            return inside[(r - below - 1) as usize].clone();
        }
        // Bracket missed or overflowed: widen and retry.
        margin_mult *= 2.0;
        if margin_mult > s_actual {
            // Degenerate fallback: full sort (never reached for sane data).
            let mut all: Vec<T> = make_iter().collect();
            all.sort_unstable();
            return all[(r - 1) as usize].clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sort_select_on_random_data() {
        let data: Vec<u64> = (0..40_000u64).map(|i| (i * 2654435761) % 999_983).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for &r in &[1u64, 777, 20_000, 39_999, 40_000] {
            let got = two_pass_select(|| data.iter().copied(), r, 42);
            assert_eq!(got, sorted[(r - 1) as usize], "rank {r}");
        }
    }

    #[test]
    fn handles_duplicates() {
        let data: Vec<u32> = (0..5_000).map(|i| i % 7).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for &r in &[1u64, 2_500, 5_000] {
            assert_eq!(
                two_pass_select(|| data.iter().copied(), r, 7),
                sorted[(r - 1) as usize]
            );
        }
    }

    #[test]
    fn tiny_inputs() {
        let data = [9u32, 1, 5];
        assert_eq!(two_pass_select(|| data.iter().copied(), 1, 1), 1);
        assert_eq!(two_pass_select(|| data.iter().copied(), 2, 1), 5);
        assert_eq!(two_pass_select(|| data.iter().copied(), 3, 1), 9);
    }

    #[test]
    fn sorted_and_reversed_inputs() {
        let asc: Vec<u32> = (0..10_000).collect();
        let desc: Vec<u32> = (0..10_000).rev().collect();
        assert_eq!(two_pass_select(|| asc.iter().copied(), 5_000, 3), 4_999);
        assert_eq!(two_pass_select(|| desc.iter().copied(), 5_000, 3), 4_999);
    }
}
