//! Exact selection baselines and rank utilities.
//!
//! The paper's antecedents (§2) are exact selection algorithms: the
//! Blum–Floyd–Pratt–Rivest–Tarjan median-of-medians algorithm ([BFP+73],
//! ≤ 5.43·N comparisons), randomized quickselect, and the multi-pass
//! selection of Munro and Paterson (\[MP80\], `Θ(N^{1/p})` memory for `p`
//! passes). This crate implements them as evaluation ground truth and as
//! baselines for the benchmark harness, plus the rank utilities the
//! accuracy experiments use to score approximate answers.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bfprt;
mod multipass;
mod quickselect;
mod rank;
mod twopass;

pub use bfprt::bfprt_select;
pub use multipass::multi_pass_select;
pub use quickselect::quickselect;
pub use rank::{exact_quantile, rank_error, rank_interval, sort_select};
pub use twopass::two_pass_select;
