//! Randomized quickselect (Hoare's FIND): expected `O(N)` comparisons.
//!
//! §2's "folklore" observation is that randomization beats Yao's `Ω(N)`
//! deterministic lower bound for approximation; quickselect is the simplest
//! randomized exact selector and serves as the fast in-memory baseline in
//! the benches.

use rand::Rng;

/// Select the 1-indexed rank `r` element of `data` (consumed and permuted).
///
/// Expected linear time; worst case quadratic (see [`crate::bfprt_select`]
/// for a worst-case linear alternative).
///
/// # Panics
/// Panics if `r ∉ [1, data.len()]`.
pub fn quickselect<T: Ord + Clone, R: Rng>(mut data: Vec<T>, r: usize, rng: &mut R) -> T {
    assert!(r >= 1 && r <= data.len(), "rank out of range");
    let target = r - 1; // 0-indexed
    let mut lo = 0usize;
    let mut hi = data.len(); // exclusive
    loop {
        if hi - lo == 1 {
            return data[lo].clone();
        }
        let pivot_idx = rng.gen_range(lo..hi);
        data.swap(pivot_idx, hi - 1);
        // Three-way partition around the pivot to handle duplicates.
        let pivot = data[hi - 1].clone();
        let mut lt = lo; // end of < region
        let mut i = lo;
        let mut gt = hi - 1; // start of > region
        while i < gt {
            if data[i] < pivot {
                data.swap(i, lt);
                lt += 1;
                i += 1;
            } else if data[i] > pivot {
                gt -= 1;
                data.swap(i, gt);
            } else {
                i += 1;
            }
        }
        data.swap(gt, hi - 1); // move pivot into the == region
        let eq_hi = {
            // == region is [lt, gt]; everything in it equals pivot.
            gt + 1
        };
        if target < lt {
            hi = lt;
        } else if target < eq_hi {
            return pivot;
        } else {
            lo = eq_hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_all_ranks(data: Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for r in 1..=data.len() {
            assert_eq!(
                quickselect(data.clone(), r, &mut rng),
                sorted[r - 1],
                "rank {r} of {data:?}"
            );
        }
    }

    #[test]
    fn selects_every_rank() {
        check_all_ranks(vec![5, 3, 9, 1, 7]);
        check_all_ranks((0..50).map(|i| (i * 17) % 23).collect());
    }

    #[test]
    fn handles_heavy_duplicates() {
        check_all_ranks(vec![4; 20]);
        check_all_ranks(vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn singleton() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(quickselect(vec![42u32], 1, &mut rng), 42);
    }

    #[test]
    fn large_random_matches_sort() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data: Vec<u64> = (0..10_000u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for r in [1, 17, 5_000, 9_999, 10_000] {
            assert_eq!(quickselect(data.clone(), r, &mut rng), sorted[r - 1]);
        }
    }
}
