//! Multi-pass exact selection (\[MP80\]).
//!
//! Munro and Paterson: `Θ(N^{1/p})` memory is necessary and sufficient to
//! select exactly in `p` passes. The randomized realisation here
//! generalises the two-pass scheme: each of the first `p − 1` passes
//! reservoir-samples *within the current bracket* and narrows the bracket
//! around the target rank; the final pass collects the bracket and reads
//! the answer off. Expected working memory per pass is
//! `O(N^{1/p} · polylog)`; a missed bracket (rare) widens the margin and
//! retries the narrowing pass.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Exact selection of the 1-indexed rank `r` over re-iterable data in
/// `passes ≥ 2` passes (plus one initial counting pass).
///
/// # Panics
/// Panics if the data is empty, `r ∉ [1, N]`, or `passes < 2`.
pub fn multi_pass_select<T, F, I>(make_iter: F, r: u64, passes: u32, seed: u64) -> T
where
    T: Ord + Clone,
    F: Fn() -> I,
    I: Iterator<Item = T>,
{
    assert!(
        passes >= 2,
        "multi-pass selection needs at least two passes"
    );
    let n = make_iter().count() as u64;
    assert!(n > 0, "selection over empty data");
    assert!(r >= 1 && r <= n, "rank out of range");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Per-pass sample size ~ N^(1/p), floored for tiny inputs.
    let s = ((n as f64).powf(1.0 / f64::from(passes)).ceil() as u64).max(32);

    // Current bracket (lo, hi): target is the rank-r element, known to be
    // > lo (when Some) and <= hi (when Some). `below_lo` counts elements
    // <= lo seen by a full scan.
    let mut lo: Option<T> = None;
    let mut hi: Option<T> = None;
    let mut margin_mult = 4.0f64;

    let mut pass = 1u32;
    while pass < passes {
        // Scan: count below/inside, reservoir-sample inside.
        let mut below_lo = 0u64;
        let mut inside_count = 0u64;
        let mut sample: Vec<T> = Vec::with_capacity(s as usize);
        for item in make_iter() {
            let under = lo.as_ref().is_some_and(|l| item <= *l);
            let over = hi.as_ref().is_some_and(|h| item > *h);
            if under {
                below_lo += 1;
            } else if !over {
                inside_count += 1;
                let i = inside_count - 1;
                if i < s {
                    sample.push(item);
                } else {
                    let j = rng.gen_range(0..=i);
                    if j < s {
                        sample[j as usize] = item;
                    }
                }
            }
        }
        if r <= below_lo || r > below_lo + inside_count {
            // Bracket missed the target: widen and retry this pass.
            margin_mult *= 2.0;
            lo = None;
            hi = None;
            if margin_mult > n as f64 {
                break; // degenerate; fall through to full collection
            }
            continue;
        }
        sample.sort_unstable();
        let s_actual = sample.len() as f64;
        let frac = (r - below_lo) as f64 / inside_count.max(1) as f64;
        let center = frac * s_actual;
        let margin = margin_mult * s_actual.sqrt();
        let lo_idx = (center - margin).floor().max(0.0) as usize;
        let hi_idx = ((center + margin).ceil() as usize).min(sample.len().saturating_sub(1));
        let new_lo = if lo_idx == 0 {
            lo.clone()
        } else {
            Some(sample[lo_idx].clone())
        };
        let new_hi = if hi_idx + 1 >= sample.len() {
            hi.clone()
        } else {
            Some(sample[hi_idx].clone())
        };
        lo = new_lo;
        hi = new_hi;
        pass += 1;
    }

    // Final pass: collect the bracket and select exactly; on overflow or
    // miss, fall back to a full sort (never reached for sane data).
    let mut below_lo = 0u64;
    let mut inside: Vec<T> = Vec::new();
    let cap = (64.0 * s as f64 * margin_mult) as usize + 1024;
    let mut overflow = false;
    for item in make_iter() {
        let under = lo.as_ref().is_some_and(|l| item <= *l);
        let over = hi.as_ref().is_some_and(|h| item > *h);
        if under {
            below_lo += 1;
        } else if !over {
            inside.push(item);
            if inside.len() > cap {
                overflow = true;
                break;
            }
        }
    }
    if !overflow && r > below_lo && (r - below_lo) as usize <= inside.len() {
        inside.sort_unstable();
        return inside[(r - below_lo - 1) as usize].clone();
    }
    let mut all: Vec<T> = make_iter().collect();
    all.sort_unstable();
    all[(r - 1) as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_passes_match_sort_select() {
        let data: Vec<u64> = (0..60_000u64).map(|i| (i * 2654435761) % 999_983).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for &r in &[1u64, 1_234, 30_000, 59_999, 60_000] {
            let got = multi_pass_select(|| data.iter().copied(), r, 3, 7);
            assert_eq!(got, sorted[(r - 1) as usize], "rank {r}");
        }
    }

    #[test]
    fn more_passes_same_answers() {
        let data: Vec<u32> = (0..20_000).map(|i| (i * 37) % 4_099).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for passes in [2u32, 3, 4, 5] {
            let got = multi_pass_select(|| data.iter().copied(), 10_000, passes, 3);
            assert_eq!(got, sorted[9_999], "passes = {passes}");
        }
    }

    #[test]
    fn duplicates_everywhere() {
        let data: Vec<u32> = (0..10_000).map(|i| i % 5).collect();
        for r in [1u64, 5_000, 10_000] {
            let mut sorted = data.clone();
            sorted.sort_unstable();
            assert_eq!(
                multi_pass_select(|| data.iter().copied(), r, 3, 1),
                sorted[(r - 1) as usize]
            );
        }
    }

    #[test]
    fn tiny_input_falls_back_gracefully() {
        let data = [3u32, 1, 2];
        assert_eq!(multi_pass_select(|| data.iter().copied(), 2, 4, 1), 2);
    }

    #[test]
    fn sorted_input() {
        let data: Vec<u64> = (0..50_000).collect();
        assert_eq!(
            multi_pass_select(|| data.iter().copied(), 25_000, 3, 9),
            24_999
        );
    }
}
