//! Blum–Floyd–Pratt–Rivest–Tarjan selection (median of medians).
//!
//! The celebrated [BFP+73] algorithm the paper cites (§2): worst-case
//! linear-time exact selection via recursive median-of-medians pivoting
//! with groups of five.

/// Select the 1-indexed rank `r` element of `data` in worst-case linear
/// time (consumed and permuted).
///
/// # Panics
/// Panics if `r ∉ [1, data.len()]`.
pub fn bfprt_select<T: Ord + Clone>(mut data: Vec<T>, r: usize) -> T {
    assert!(r >= 1 && r <= data.len(), "rank out of range");
    let len = data.len();
    select_in(&mut data, 0, len, r - 1)
}

/// Selection within `data[lo..hi]` for 0-indexed global `target`.
fn select_in<T: Ord + Clone>(data: &mut [T], mut lo: usize, mut hi: usize, target: usize) -> T {
    loop {
        debug_assert!(lo <= target && target < hi);
        if hi - lo <= 10 {
            data[lo..hi].sort_unstable();
            return data[target].clone();
        }
        let pivot = median_of_medians(data, lo, hi);
        // Three-way partition around `pivot`.
        let (lt, eq_hi) = partition3(data, lo, hi, &pivot);
        if target < lt {
            hi = lt;
        } else if target < eq_hi {
            return pivot;
        } else {
            lo = eq_hi;
        }
    }
}

/// The classic groups-of-five pivot: median of the ⌈n/5⌉ group medians.
fn median_of_medians<T: Ord + Clone>(data: &mut [T], lo: usize, hi: usize) -> T {
    let mut medians: Vec<T> = Vec::with_capacity((hi - lo).div_ceil(5));
    let mut i = lo;
    while i < hi {
        let end = (i + 5).min(hi);
        data[i..end].sort_unstable();
        medians.push(data[i + (end - i - 1) / 2].clone());
        i = end;
    }
    let mid = (medians.len() - 1) / 2;
    let len = medians.len();
    select_in(&mut medians, 0, len, mid)
}

/// Dutch-flag partition of `data[lo..hi]` around `pivot`; returns
/// `(lt, eq_hi)`: `[lo, lt)` < pivot, `[lt, eq_hi)` == pivot, `[eq_hi, hi)`
/// > pivot.
fn partition3<T: Ord>(data: &mut [T], lo: usize, hi: usize, pivot: &T) -> (usize, usize) {
    let mut lt = lo;
    let mut i = lo;
    let mut gt = hi;
    while i < gt {
        if data[i] < *pivot {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if data[i] > *pivot {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_ranks(data: Vec<u32>) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for r in 1..=data.len() {
            assert_eq!(bfprt_select(data.clone(), r), sorted[r - 1], "rank {r}");
        }
    }

    #[test]
    fn selects_every_rank_small() {
        check_all_ranks(vec![5, 3, 9, 1, 7]);
        check_all_ranks((0..67).map(|i| (i * 29) % 31).collect());
    }

    #[test]
    fn duplicates_and_sorted_inputs() {
        check_all_ranks(vec![7; 23]);
        check_all_ranks((0..40).collect());
        check_all_ranks((0..40).rev().collect());
    }

    #[test]
    fn adversarial_organ_pipe() {
        let mut v: Vec<u32> = (0..50).collect();
        v.extend((0..50).rev());
        check_all_ranks(v);
    }

    #[test]
    fn large_matches_sort() {
        let data: Vec<u32> = (0..20_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 65_536)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for r in [1, 123, 10_000, 19_999, 20_000] {
            assert_eq!(bfprt_select(data.clone(), r), sorted[r - 1]);
        }
    }
}
