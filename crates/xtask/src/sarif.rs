//! Dependency-free SARIF 2.1.0 writer and validator for `cargo xtask
//! analyze --sarif <path>` / `cargo xtask validate-sarif <path>`.
//!
//! The writer emits the minimal interchange shape SARIF viewers and code
//! scanning UIs consume: one run, one `tool.driver` carrying the full
//! MRL-A rule catalogue, and one `result` per finding with a physical
//! location and the ratchet fingerprint under `partialFingerprints` (so
//! a SARIF consumer's dedup keys line up with the committed baseline).
//! The validator re-reads the document with the hand-rolled JSON reader
//! from [`crate::validate`] and checks the structural contract below —
//! writer and validator share no rendering code, so a writer bug cannot
//! be masked by a shared serializer.

use std::fmt::Write as _;

use analyzer::Finding;

use crate::validate::{parse_json, Json};

/// The analyzer rule catalogue, emitted in full even when no finding
/// references a rule — the driver section is the single source of truth
/// for consumers mapping `ruleId`s to descriptions.
pub const RULES: &[(&str, &str)] = &[
    ("MRL-A001", "panic source reachable from a hot-path entry point"),
    ("MRL-A002", "unchecked arithmetic on an exact-accounting value"),
    ("MRL-A003", "allocation reachable from the per-element ingest path"),
    ("MRL-A004", "cfg(feature) string inconsistent with the [features] table"),
    ("MRL-A005", "atomics protocol violation: unsealed Relaxed publish, over-strong CAS failure ordering, or unvalidated seqlock read"),
    ("MRL-A006", "channel topology deadlock risk: bounded cycle, dead receiver, or blocking bounded send in a recv-blocked loop"),
    ("MRL-A007", "accounting state captured on a seal/collapse/shipment path is dropped on some path to exit"),
    ("MRL-A008", "nondeterminism source (unseeded RNG, hash-order iteration, clock read, recv completion order) on a result-affecting path"),
    ("MRL-A009", "unsafe block or fn without a safety contract tag, or outside the unsafe allowlist"),
    ("MRL-A010", "panic-audit tag contradiction: the tag covers a must-execute panic macro, or suppresses nothing and is stale"),
];

/// JSON string escape: quotes, backslashes, and control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a SARIF 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mrl-analyzer\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        esc(env!("CARGO_PKG_VERSION"))
    );
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}{}",
            esc(id),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"ruleId\": \"{}\",", esc(f.rule));
        out.push_str("          \"level\": \"error\",\n");
        let _ = writeln!(
            out,
            "          \"message\": {{ \"text\": \"{}\" }},",
            esc(&f.message)
        );
        // SARIF wants a forward-slash URI even off Unix.
        let uri = f.path.replace('\\', "/");
        let _ = writeln!(
            out,
            "          \"locations\": [ {{ \"physicalLocation\": {{ \
             \"artifactLocation\": {{ \"uri\": \"{}\" }}, \
             \"region\": {{ \"startLine\": {} }} }} }} ],",
            esc(&uri),
            f.line.max(1)
        );
        let _ = writeln!(
            out,
            "          \"partialFingerprints\": {{ \"mrlFingerprint/v1\": \"{:016x}\" }}",
            f.fingerprint
        );
        let _ = writeln!(
            out,
            "        }}{}",
            if i + 1 < findings.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// What a successful SARIF validation found, for the CLI summary line.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SarifSummary {
    /// Rules declared by the driver.
    pub rules: usize,
    /// Results across all runs.
    pub results: usize,
}

fn str_at<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(format!("{what}: `{key}` must be a string")),
        None => Err(format!("{what}: missing `{key}`")),
    }
}

/// Structurally validate a SARIF 2.1.0 document as produced by
/// [`render`]: version pin, non-empty runs, a named driver with a
/// unique-id rule catalogue, and per-result ruleId/message/location/
/// fingerprint discipline.
pub fn validate_sarif(text: &str) -> Result<SarifSummary, String> {
    let doc = parse_json(text)?;
    match doc.get("version") {
        Some(Json::Str(v)) if v == "2.1.0" => {}
        Some(Json::Str(v)) => return Err(format!("version must be 2.1.0, got {v}")),
        _ => return Err("top-level object has no string `version`".into()),
    }
    let runs = match doc.get("runs") {
        Some(Json::Arr(runs)) if !runs.is_empty() => runs,
        Some(Json::Arr(_)) => return Err("`runs` is empty".into()),
        _ => return Err("top-level object has no `runs` array".into()),
    };
    let mut summary = SarifSummary::default();
    for (ri, run) in runs.iter().enumerate() {
        let what = format!("run {ri}");
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or_else(|| format!("{what}: missing `tool.driver`"))?;
        let name = str_at(driver, "name", &what)?;
        if name.is_empty() {
            return Err(format!("{what}: empty driver name"));
        }
        let mut rule_ids: Vec<&str> = Vec::new();
        if let Some(rules) = driver.get("rules") {
            let Json::Arr(rules) = rules else {
                return Err(format!("{what}: `rules` must be an array"));
            };
            for (i, rule) in rules.iter().enumerate() {
                let id = str_at(rule, "id", &format!("{what} rule {i}"))?;
                if rule_ids.contains(&id) {
                    return Err(format!("{what}: duplicate rule id `{id}`"));
                }
                rule_ids.push(id);
            }
        }
        summary.rules += rule_ids.len();
        let results = match run.get("results") {
            Some(Json::Arr(results)) => results,
            Some(_) => return Err(format!("{what}: `results` must be an array")),
            None => return Err(format!("{what}: missing `results`")),
        };
        for (i, res) in results.iter().enumerate() {
            let what = format!("result {i}");
            let rule_id = str_at(res, "ruleId", &what)?;
            if !rule_ids.is_empty() && !rule_ids.contains(&rule_id) {
                return Err(format!(
                    "{what}: ruleId `{rule_id}` not in the driver catalogue"
                ));
            }
            let msg = res
                .get("message")
                .ok_or_else(|| format!("{what}: missing `message`"))?;
            if str_at(msg, "text", &what)?.is_empty() {
                return Err(format!("{what}: empty message.text"));
            }
            let locs = match res.get("locations") {
                Some(Json::Arr(locs)) if !locs.is_empty() => locs,
                _ => return Err(format!("{what}: missing or empty `locations`")),
            };
            for loc in locs {
                let phys = loc
                    .get("physicalLocation")
                    .ok_or_else(|| format!("{what}: location without `physicalLocation`"))?;
                let art = phys
                    .get("artifactLocation")
                    .ok_or_else(|| format!("{what}: missing `artifactLocation`"))?;
                let uri = str_at(art, "uri", &what)?;
                if uri.is_empty() || uri.contains('\\') {
                    return Err(format!(
                        "{what}: uri must be non-empty forward-slash, got `{uri}`"
                    ));
                }
                match phys.get("region").and_then(|r| r.get("startLine")) {
                    Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => {}
                    _ => return Err(format!("{what}: region.startLine must be an integer >= 1")),
                }
            }
            if let Some(fps) = res.get("partialFingerprints") {
                let Json::Obj(fields) = fps else {
                    return Err(format!("{what}: `partialFingerprints` must be an object"));
                };
                for (k, v) in fields {
                    match v {
                        Json::Str(s)
                            if !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()) => {}
                        _ => return Err(format!("{what}: fingerprint `{k}` must be a hex string")),
                    }
                }
            }
            summary.results += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            snippet: String::new(),
            fingerprint: 0xdead_beef_0123_4567,
            message: msg.to_string(),
        }
    }

    #[test]
    fn render_validates_round_trip() {
        let findings = vec![
            finding("MRL-A001", "crates/core/src/lib.rs", 10, "panic reachable"),
            finding(
                "MRL-A005",
                "crates/obs/src/journal.rs",
                42,
                "nasty \"quoted\" message with \\ backslash\nand newline\ttab",
            ),
        ];
        let doc = render(&findings);
        let summary = validate_sarif(&doc).unwrap();
        assert_eq!(summary.rules, RULES.len());
        assert_eq!(summary.results, 2);
    }

    #[test]
    fn empty_findings_still_render_the_catalogue() {
        let doc = render(&[]);
        let summary = validate_sarif(&doc).unwrap();
        assert_eq!(summary.rules, RULES.len());
        assert_eq!(summary.results, 0);
    }

    #[test]
    fn zero_line_findings_are_clamped_to_one() {
        // Manifest-anchored findings (MRL-A004's feature table) can sit
        // on line 0 in degenerate parses; SARIF requires >= 1.
        let doc = render(&[finding("MRL-A004", "crates/core/Cargo.toml", 0, "m")]);
        assert!(validate_sarif(&doc).is_ok());
    }

    #[test]
    fn backslash_paths_are_normalised_to_uris() {
        let doc = render(&[finding("MRL-A001", "crates\\core\\src\\lib.rs", 3, "m")]);
        assert!(validate_sarif(&doc).is_ok());
        assert!(doc.contains("crates/core/src/lib.rs"));
    }

    #[test]
    fn validator_rejects_structural_defects() {
        let cases = [
            ("{}", "no string `version`"),
            (r#"{"version":"2.0.0","runs":[]}"#, "version must be 2.1.0"),
            (r#"{"version":"2.1.0","runs":[]}"#, "`runs` is empty"),
            (
                r#"{"version":"2.1.0","runs":[{"results":[]}]}"#,
                "missing `tool.driver`",
            ),
            (
                r#"{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t","rules":[{"id":"R1"},{"id":"R1"}]}},"results":[]}]}"#,
                "duplicate rule id",
            ),
            (
                r#"{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t","rules":[{"id":"R1"}]}},"results":[{"ruleId":"R2","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.rs"},"region":{"startLine":1}}}]}]}]}"#,
                "not in the driver catalogue",
            ),
            (
                r#"{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t"}},"results":[{"ruleId":"R1","message":{"text":"m"},"locations":[]}]}]}"#,
                "missing or empty `locations`",
            ),
            (
                r#"{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t"}},"results":[{"ruleId":"R1","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.rs"},"region":{"startLine":0}}}]}]}]}"#,
                "startLine must be an integer >= 1",
            ),
            (
                r#"{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t"}},"results":[{"ruleId":"R1","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.rs"},"region":{"startLine":1}}}],"partialFingerprints":{"k":"xyz-not-hex"}}]}]}"#,
                "must be a hex string",
            ),
        ];
        for (doc, needle) in cases {
            let err = validate_sarif(doc).unwrap_err();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }
}
