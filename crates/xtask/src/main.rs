//! Workspace automation entry point.
//!
//! * `cargo xtask lint` — the lexer-based concurrency-hygiene pass from
//!   `xtask::lint_workspace` (rules MRL-L001..L005).
//! * `cargo xtask analyze` — the parser-based analyses from the
//!   `analyzer` crate (rules MRL-A001..A010: panic-reachability,
//!   arithmetic safety, hot-path allocation, feature-gate consistency,
//!   atomics protocol, channel topology, accounting flow,
//!   nondeterminism taint, unsafe containment, panic-tag audit).
//!
//! Both commands ratchet against a committed baseline of grandfathered
//! fingerprints. A baseline entry that no longer fires is an error (the
//! ratchet must only tighten): re-pin with `--prune`, which drops dead
//! entries without admitting new findings. `--update-baseline` re-pins
//! everything, new findings included, and is for deliberate re-baselining
//! only.
//!
//! `analyze` additionally ratchets the **count of `// alloc:` tags** —
//! each tag admits one allocation site on the per-element ingest path, so
//! the count is the workspace's hot-path allocation budget
//! (`crates/xtask/alloc-budget.txt`). More tags than the budget fail the
//! check; fewer fail too until the tighter count is re-pinned. `--prune`
//! re-pins the tighter count in the same pass it drops stale baseline
//! entries (one invocation, both files) and refuses to grow the budget.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const LINT_BASELINE_REL: &str = "crates/xtask/lint-baseline.txt";
const ANALYZE_BASELINE_REL: &str = "crates/xtask/analyze-baseline.txt";
const ALLOC_BUDGET_REL: &str = "crates/xtask/alloc-budget.txt";

fn workspace_root() -> PathBuf {
    // When run via `cargo xtask …`, the manifest dir is crates/xtask.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = PathBuf::from(dir).ancestors().nth(2).map(PathBuf::from) {
            if root.join("Cargo.toml").exists() {
                return root;
            }
        }
    }
    PathBuf::from(".")
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Check,
    Update,
    Prune,
}

fn mode_of(args: &[String]) -> Mode {
    if args.iter().any(|a| a == "--update-baseline") {
        Mode::Update
    } else if args.iter().any(|a| a == "--prune") {
        Mode::Prune
    } else {
        Mode::Check
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(mode_of(&args)),
        Some("analyze") => {
            let path_arg = |flag: &str| {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .map(PathBuf::from)
            };
            let json = path_arg("--json");
            let sarif = path_arg("--sarif");
            analyze(mode_of(&args), json.as_deref(), sarif.as_deref())
        }
        Some("validate-trace") => validate_artifact(args.get(1), "validate-trace", |text| {
            xtask::validate::validate_trace(text).map(|s| {
                format!(
                    "{} events ({} tracks, {} span pairs, {} complete, {} instant, \
                     {} unclosed, {} orphan ends)",
                    s.events,
                    s.tracks,
                    s.span_pairs,
                    s.complete,
                    s.instants,
                    s.unclosed,
                    s.orphan_ends
                )
            })
        }),
        Some("validate-prom") => validate_artifact(args.get(1), "validate-prom", |text| {
            xtask::validate::validate_prom(text)
                .map(|s| format!("{} samples under {} `# TYPE` headers", s.samples, s.types))
        }),
        Some("validate-sarif") => validate_artifact(args.get(1), "validate-sarif", |text| {
            xtask::sarif::validate_sarif(text)
                .map(|s| format!("{} result(s) under {} declared rule(s)", s.results, s.rules))
        }),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--update-baseline|--prune]\n       \
                 cargo xtask analyze [--update-baseline|--prune] [--json <path>] [--sarif <path>]\n       \
                 cargo xtask validate-trace <trace.json>\n       \
                 cargo xtask validate-prom <metrics.prom>\n       \
                 cargo xtask validate-sarif <analyze.sarif>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Shared driver for the exporter-artifact validators: read the file,
/// run the checker, report one line either way.
fn validate_artifact(
    path: Option<&String>,
    cmd: &str,
    check: impl Fn(&str) -> Result<String, String>,
) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask {cmd} <path>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask {cmd}: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("xtask {cmd}: {path} OK — {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask {cmd}: {path} INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

/// Outcome of ratcheting current findings against a committed baseline.
struct Ratchet {
    /// Findings whose fingerprints are grandfathered.
    known: usize,
    /// Baseline entries that no longer fire.
    stale: usize,
    /// Indices (into the findings slice) of non-grandfathered findings.
    new: Vec<usize>,
}

fn ratchet(fingerprints: &[String], baseline_path: &Path) -> Ratchet {
    let baseline: Vec<String> = std::fs::read_to_string(baseline_path)
        .map(|c| xtask::parse_baseline(&c))
        .unwrap_or_default();
    let mut new = Vec::new();
    let mut known = 0usize;
    for (i, fp) in fingerprints.iter().enumerate() {
        if baseline.contains(fp) {
            known += 1;
        } else {
            new.push(i);
        }
    }
    let firing: std::collections::BTreeSet<&String> = fingerprints.iter().collect();
    let stale = baseline.iter().filter(|b| !firing.contains(b)).count();
    Ratchet { known, stale, new }
}

fn lint(mode: Mode) -> ExitCode {
    let root = workspace_root();
    let violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: failed to read sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = root.join(LINT_BASELINE_REL);
    if mode == Mode::Update {
        let rendered = xtask::render_baseline(&violations);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: baseline updated with {} finding(s) at {}",
            violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let fingerprints: Vec<String> = violations.iter().map(|v| v.fingerprint.clone()).collect();
    let r = ratchet(&fingerprints, &baseline_path);
    if mode == Mode::Prune {
        // Re-pin only the still-firing grandfathered findings; new
        // findings are NOT admitted and still fail below.
        let keep: Vec<_> = violations
            .iter()
            .enumerate()
            .filter(|(i, _)| !r.new.contains(i))
            .map(|(_, v)| v.clone())
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, xtask::render_baseline(&keep)) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: pruned {} stale entr(y/ies); baseline now {} finding(s)",
            r.stale,
            keep.len()
        );
    }
    let mut failed = false;
    if !r.new.is_empty() {
        eprintln!("xtask lint: {} new finding(s):", r.new.len());
        for &i in &r.new {
            eprintln!("  {}", violations[i]);
        }
        eprintln!(
            "\nFix the finding, move the logic to the crate the rule names, or — for a\n\
             deliberate exception — justify it (`// ordering: …` tag / allowlist entry in\n\
             crates/xtask/src/lib.rs) or re-pin with `cargo xtask lint --update-baseline`."
        );
        failed = true;
    }
    if mode == Mode::Check && r.stale > 0 {
        eprintln!(
            "xtask lint: {} baseline entr(y/ies) no longer fire — the ratchet must\n\
             tighten: run `cargo xtask lint --prune` and commit the shrunken baseline.",
            r.stale
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "xtask lint: clean — {} grandfathered finding(s), 0 new, 0 stale",
        r.known
    );
    ExitCode::SUCCESS
}

/// Ratchet the live `// alloc:` tag count against the committed budget.
/// `Update` re-pins unconditionally; `Prune` re-pins in the same pass
/// but only downward (`xtask::prune_alloc_budget`) — symmetric with the
/// finding baseline, where pruning drops stale entries without admitting
/// new ones. In `Check` mode any difference from the pin is an error
/// (above: the hot path gained an allocation site; below: the tighter
/// count must be committed). Returns `true` when the check failed.
fn alloc_tag_ratchet(root: &Path, mode: Mode) -> bool {
    let budget_path = root.join(ALLOC_BUDGET_REL);
    let (count, per_file) = match xtask::count_alloc_tags(root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask analyze: failed to count alloc tags: {e}");
            return true;
        }
    };
    let budget = std::fs::read_to_string(&budget_path)
        .ok()
        .as_deref()
        .and_then(xtask::parse_alloc_budget);
    if mode != Mode::Check {
        let pin = if mode == Mode::Prune {
            match xtask::prune_alloc_budget(count, budget) {
                Ok(pin) => pin,
                Err(b) => {
                    eprintln!(
                        "xtask analyze: {count} `// alloc:` tag(s) but the budget is {b} — \
                         pruning only tightens; growing the budget is a deliberate decision,\n\
                         re-pinned with `cargo xtask analyze --update-baseline`. Tagged files:"
                    );
                    for (path, n) in &per_file {
                        eprintln!("  {n:3}  {path}");
                    }
                    return true;
                }
            }
        } else {
            count
        };
        if let Err(e) = std::fs::write(&budget_path, xtask::render_alloc_budget(pin)) {
            eprintln!("xtask analyze: cannot write {}: {e}", budget_path.display());
            return true;
        }
        println!("xtask analyze: alloc-tag budget pinned at {pin}");
        return false;
    }
    match budget {
        None => {
            eprintln!(
                "xtask analyze: missing or unreadable {} — pin the current `// alloc:`\n\
                 tag count ({count}) with `cargo xtask analyze --update-baseline`.",
                budget_path.display()
            );
            true
        }
        Some(b) if count > b => {
            eprintln!(
                "xtask analyze: {count} `// alloc:` tag(s) but the budget is {b} — the\n\
                 per-element path gained an allocation site. Rework it onto the scratch\n\
                 arena (DESIGN.md §3.12); growing the budget is a deliberate decision,\n\
                 re-pinned with `cargo xtask analyze --update-baseline`. Tagged files:"
            );
            for (path, n) in &per_file {
                eprintln!("  {n:3}  {path}");
            }
            true
        }
        Some(b) if count < b => {
            eprintln!(
                "xtask analyze: {count} `// alloc:` tag(s), under the budget of {b} — the\n\
                 ratchet must only tighten: re-pin with `cargo xtask analyze --prune`\n\
                 and commit the shrunken budget."
            );
            true
        }
        Some(_) => {
            println!("xtask analyze: {count} `// alloc:` tag(s), within budget");
            false
        }
    }
}

fn render_analyze_baseline(findings: &[analyzer::Finding]) -> String {
    let mut out = String::from(
        "# cargo xtask analyze baseline: grandfathered findings by fingerprint.\n\
         # Regenerate with `cargo xtask analyze --update-baseline`, shrink with\n\
         # `--prune`; the goal is for this file to stay empty.\n",
    );
    for f in findings {
        out.push_str(&format!(
            "{:016x} {} {} {}\n",
            f.fingerprint, f.rule, f.path, f.snippet
        ));
    }
    out
}

fn display(f: &analyzer::Finding) -> String {
    format!(
        "{:016x} {} {}:{} {} [{}]",
        f.fingerprint, f.rule, f.path, f.line, f.snippet, f.message
    )
}

fn analyze(mode: Mode, json: Option<&Path>, sarif: Option<&Path>) -> ExitCode {
    let root = workspace_root();
    let ws = match analyzer::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask analyze: failed to load workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parser recovery means an item the grammar didn't understand: the
    // analyses silently skip whatever it contained, so coverage holes are
    // hard errors, not warnings.
    let recovered = ws.recovered();
    if !recovered.is_empty() {
        eprintln!(
            "xtask analyze: parser fell back on {} item(s) — teach crates/analyzer/src/parser.rs the construct:",
            recovered.len()
        );
        for (path, line, why) in &recovered {
            eprintln!("  {path}:{line}: {why}");
        }
        return ExitCode::FAILURE;
    }
    let findings = analyzer::analyze(&ws);
    if let Some(path) = json {
        if let Err(e) = std::fs::write(path, analyzer::json::render(&findings)) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: wrote {} finding(s) to {}",
            findings.len(),
            path.display()
        );
    }
    if let Some(path) = sarif {
        if let Err(e) = std::fs::write(path, xtask::sarif::render(&findings)) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: wrote SARIF with {} result(s) to {}",
            findings.len(),
            path.display()
        );
    }
    let baseline_path = root.join(ANALYZE_BASELINE_REL);
    if mode == Mode::Update {
        if let Err(e) = std::fs::write(&baseline_path, render_analyze_baseline(&findings)) {
            eprintln!(
                "xtask analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: baseline updated with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        if alloc_tag_ratchet(&root, mode) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let fingerprints: Vec<String> = findings
        .iter()
        .map(|f| format!("{:016x}", f.fingerprint))
        .collect();
    let r = ratchet(&fingerprints, &baseline_path);
    if mode == Mode::Prune {
        let keep: Vec<_> = findings
            .iter()
            .enumerate()
            .filter(|(i, _)| !r.new.contains(i))
            .map(|(_, f)| f.clone())
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, render_analyze_baseline(&keep)) {
            eprintln!(
                "xtask analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: pruned {} stale entr(y/ies); baseline now {} finding(s)",
            r.stale,
            keep.len()
        );
    }
    let mut failed = false;
    if !r.new.is_empty() {
        eprintln!("xtask analyze: {} new finding(s):", r.new.len());
        for &i in &r.new {
            eprintln!("  {}", display(&findings[i]));
        }
        eprintln!(
            "\nFix the finding or justify it at the site with the rule's tag\n\
             (`// panic-free: …`, `// arith: …`, `// alloc: …`, `// protocol: …`,\n\
             `// nondet: …`, `// safety: …`) — see DESIGN.md §3.11 and §3.16."
        );
        failed = true;
    }
    if mode == Mode::Check && r.stale > 0 {
        eprintln!(
            "xtask analyze: {} baseline entr(y/ies) no longer fire — run\n\
             `cargo xtask analyze --prune` and commit the shrunken baseline.",
            r.stale
        );
        failed = true;
    }
    if alloc_tag_ratchet(&root, mode) {
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "xtask analyze: clean — {} grandfathered finding(s), 0 new, 0 stale",
        r.known
    );
    ExitCode::SUCCESS
}
