//! Workspace automation entry point. `cargo xtask lint` runs the
//! concurrency-hygiene pass from `xtask::lint_workspace`; see the library
//! docs for the rule table and fingerprint semantics.

use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_REL: &str = "crates/xtask/lint-baseline.txt";

fn workspace_root() -> PathBuf {
    // When run via `cargo xtask …`, the manifest dir is crates/xtask.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = PathBuf::from(dir).ancestors().nth(2).map(PathBuf::from) {
            if root.join("Cargo.toml").exists() {
                return root;
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--update-baseline")),
        _ => {
            eprintln!("usage: cargo xtask lint [--update-baseline]");
            ExitCode::FAILURE
        }
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: failed to read sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = root.join(BASELINE_REL);
    if update_baseline {
        let rendered = xtask::render_baseline(&violations);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: baseline updated with {} finding(s) at {}",
            violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline: Vec<String> = std::fs::read_to_string(&baseline_path)
        .map(|c| xtask::parse_baseline(&c))
        .unwrap_or_default();
    let (known, new): (Vec<_>, Vec<_>) = violations
        .into_iter()
        .partition(|v| baseline.contains(&v.fingerprint));
    let stale = baseline.len() - known.len();
    if new.is_empty() {
        println!(
            "xtask lint: clean — {} grandfathered finding(s), 0 new{}",
            known.len(),
            if stale > 0 {
                format!(
                    " ({stale} baseline entr(y/ies) no longer fire — consider --update-baseline)"
                )
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("xtask lint: {} new finding(s):", new.len());
    for v in &new {
        eprintln!("  {v}");
    }
    eprintln!(
        "\nFix the finding, move the logic to the crate the rule names, or — for a\n\
         deliberate exception — justify it (`// ordering: …` tag / allowlist entry in\n\
         crates/xtask/src/lib.rs) or re-pin with `cargo xtask lint --update-baseline`."
    );
    ExitCode::FAILURE
}
