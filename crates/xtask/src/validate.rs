//! Artifact validators for the flight-recorder exporters, run in CI as
//! `cargo xtask validate-trace <path>` and `cargo xtask validate-prom
//! <path>`.
//!
//! Both validators are deliberately dependency-free: the trace checker
//! carries its own minimal JSON reader rather than pulling the vendored
//! serde stand-in into the tooling crate, so a bug in the exporter's
//! hand-built JSON cannot be masked by a shared parser quirk.
//!
//! * [`validate_trace`] checks the `trace_event` JSON the Perfetto
//!   exporter writes: well-formed JSON, a `traceEvents` array whose
//!   entries carry the phase-appropriate fields (`ph`/`pid`/`tid`/`ts`,
//!   `dur` for complete events, `args.name` for metadata), and span
//!   begin/end nesting discipline per track.
//! * [`validate_prom`] checks Prometheus text exposition format 0.0.4
//!   line by line: `# TYPE`/`# HELP` headers, metric and label name
//!   grammar, escaped label values, and numeric sample values
//!   (including `NaN`/`+Inf`/`-Inf`).

use std::fmt;

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON value. Object keys keep file order (duplicates kept).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up `key` in an object (first occurrence); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl fmt::Display) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format_args!(
                "expected `{}`, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(self.err(format_args!("unexpected {:?}", other.map(|c| c as char)))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format_args!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format_args!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err(format_args!("bad \\u escape `{hex}`")))?;
                            // Surrogate pairs are not needed for our
                            // exporter's ASCII identifiers; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(
                                self.err(format_args!("bad escape {:?}", other.map(|c| c as char)))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.err(format_args!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(self.err(format_args!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader::new(text);
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing garbage after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Chrome-trace validator
// ---------------------------------------------------------------------

/// What a successful trace validation found, for the CLI summary line.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// `B`/`E` span pairs that matched up.
    pub span_pairs: usize,
    /// `X` complete events.
    pub complete: usize,
    /// `i` instant events.
    pub instants: usize,
    /// Named tracks (`thread_name` metadata events).
    pub tracks: usize,
    /// `B` events left open at end of trace (tolerated: a ring overwrite
    /// can drop an end, and a panic dump can cut a span short).
    pub unclosed: usize,
    /// `E` events whose begin was overwritten out of the ring (tolerated
    /// for the same reason; still counted so a regression is visible).
    pub orphan_ends: usize,
}

fn field<'a>(ev: &'a Json, key: &str, idx: usize) -> Result<&'a Json, String> {
    ev.get(key)
        .ok_or_else(|| format!("event {idx}: missing `{key}`"))
}

fn num_field(ev: &Json, key: &str, idx: usize) -> Result<f64, String> {
    match field(ev, key, idx)? {
        Json::Num(n) => Ok(*n),
        other => Err(format!(
            "event {idx}: `{key}` must be a number, got {}",
            other.type_name()
        )),
    }
}

fn str_field<'a>(ev: &'a Json, key: &str, idx: usize) -> Result<&'a str, String> {
    match field(ev, key, idx)? {
        Json::Str(s) => Ok(s),
        other => Err(format!(
            "event {idx}: `{key}` must be a string, got {}",
            other.type_name()
        )),
    }
}

/// Structurally validate a chrome-trace (`trace_event`) JSON document as
/// produced by `mrl_obs::export::perfetto::to_chrome_trace`.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(other) => {
            return Err(format!(
                "`traceEvents` must be an array, got {}",
                other.type_name()
            ))
        }
        None => return Err("top-level object has no `traceEvents`".into()),
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-tid stacks of open span names for B/E nesting discipline.
    let mut open: Vec<(u64, Vec<String>)> = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        if !matches!(ev, Json::Obj(_)) {
            return Err(format!("event {idx}: not an object"));
        }
        let ph = str_field(ev, "ph", idx)?;
        num_field(ev, "pid", idx)?;
        match ph {
            "M" => {
                let name = str_field(ev, "name", idx)?;
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {idx}: unknown metadata `{name}`"));
                }
                let args = field(ev, "args", idx)?;
                match args.get("name") {
                    Some(Json::Str(s)) if !s.is_empty() => {}
                    _ => return Err(format!("event {idx}: metadata needs args.name string")),
                }
                if name == "thread_name" {
                    num_field(ev, "tid", idx)?;
                    summary.tracks += 1;
                }
            }
            "B" | "E" | "X" | "i" => {
                let tid = num_field(ev, "tid", idx)? as u64;
                let ts = num_field(ev, "ts", idx)?;
                if ts.is_nan() || ts < 0.0 {
                    return Err(format!("event {idx}: negative or NaN ts {ts}"));
                }
                let name = str_field(ev, "name", idx)?;
                if name.is_empty() {
                    return Err(format!("event {idx}: empty name"));
                }
                str_field(ev, "cat", idx)?;
                match ph {
                    "B" => {
                        let pos = match open.iter().position(|(t, _)| *t == tid) {
                            Some(p) => p,
                            None => {
                                open.push((tid, Vec::new()));
                                open.len() - 1
                            }
                        };
                        open[pos].1.push(name.to_string());
                    }
                    "E" => {
                        let stack = open.iter_mut().find(|(t, _)| *t == tid).map(|(_, s)| s);
                        match stack.and_then(Vec::pop) {
                            Some(top) if top == name => summary.span_pairs += 1,
                            Some(top) => {
                                return Err(format!(
                                    "event {idx}: span end `{name}` crosses open span `{top}` \
                                     on tid {tid}"
                                ))
                            }
                            None => summary.orphan_ends += 1,
                        }
                    }
                    "X" => {
                        let dur = num_field(ev, "dur", idx)?;
                        if dur.is_nan() || dur < 0.0 {
                            return Err(format!("event {idx}: negative or NaN dur {dur}"));
                        }
                        summary.complete += 1;
                    }
                    _ => {
                        // "i": the scope field is required by the format.
                        match field(ev, "s", idx)? {
                            Json::Str(s) if matches!(s.as_str(), "t" | "p" | "g") => {}
                            _ => {
                                return Err(format!("event {idx}: instant scope must be t|p|g"));
                            }
                        }
                        summary.instants += 1;
                    }
                }
            }
            other => return Err(format!("event {idx}: unknown phase `{other}`")),
        }
    }
    summary.unclosed = open.iter().map(|(_, s)| s.len()).sum();
    Ok(summary)
}

// ---------------------------------------------------------------------
// Prometheus exposition validator
// ---------------------------------------------------------------------

/// What a successful exposition validation found.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PromSummary {
    /// Sample lines.
    pub samples: usize,
    /// `# TYPE` headers.
    pub types: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_sample_value(s: &str) -> bool {
    matches!(s, "NaN" | "+Inf" | "-Inf" | "Inf") || s.parse::<f64>().is_ok()
}

/// Parse the labels + value tail of a sample line, starting after the
/// metric name. Returns the number of labels on success.
fn check_sample_tail(tail: &str, lineno: usize) -> Result<(), String> {
    let rest = if let Some(after_brace) = tail.strip_prefix('{') {
        // Walk `name="value",…}` respecting escapes inside values.
        let mut chars = after_brace.char_indices().peekable();
        let mut label_start = 0usize;
        loop {
            // Label name up to `=`.
            let eq = loop {
                match chars.next() {
                    Some((i, '=')) => break i,
                    Some((i, '}')) if i == label_start => {
                        // `{}` — empty label set is legal.
                        break usize::MAX;
                    }
                    Some(_) => {}
                    None => return Err(format!("line {lineno}: unterminated label set")),
                }
            };
            if eq == usize::MAX {
                break &after_brace[label_start..];
            }
            let name = &after_brace[label_start..eq];
            if !valid_label_name(name) {
                return Err(format!("line {lineno}: bad label name `{name}`"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(format!("line {lineno}: label value must be quoted")),
            }
            // Consume the quoted value, honouring \\ \" \n escapes.
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\' | '"' | 'n')) => {}
                        _ => return Err(format!("line {lineno}: bad escape in label value")),
                    },
                    Some((_, '"')) => break,
                    Some(_) => {}
                    None => return Err(format!("line {lineno}: unterminated label value")),
                }
            }
            match chars.next() {
                Some((i, ',')) => {
                    label_start = i + 1;
                }
                Some((i, '}')) => break &after_brace[i + 1..],
                _ => return Err(format!("line {lineno}: expected `,` or `}}` after label")),
            }
        }
    } else {
        tail
    };
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
    if !valid_sample_value(value) {
        return Err(format!("line {lineno}: bad sample value `{value}`"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("line {lineno}: bad timestamp `{ts}`"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("line {lineno}: trailing tokens after sample"));
    }
    Ok(())
}

/// Validate Prometheus text exposition format 0.0.4, as produced by
/// `MetricsSnapshot::to_prometheus`.
pub fn validate_prom(text: &str) -> Result<PromSummary, String> {
    let mut summary = PromSummary::default();
    let mut typed: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: `# TYPE` without a metric name"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name `{name}`"));
            }
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: `# TYPE {name}` without a type"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            if typed.iter().any(|t| t == name) {
                return Err(format!("line {lineno}: duplicate `# TYPE` for `{name}`"));
            }
            typed.push(name.to_string());
            summary.types += 1;
            continue;
        }
        if line.starts_with('#') {
            // `# HELP` and free comments are both legal and unchecked
            // beyond being comments.
            continue;
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        check_sample_tail(line[name_end..].trim_start(), lineno)?;
        summary.samples += 1;
    }
    if summary.samples == 0 {
        return Err("no sample lines found (empty exposition)".into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_round_trips_the_shapes_the_exporter_emits() {
        let doc = r#"{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":0,
            "args":{"name":"shard[0]"}}],"displayTimeUnit":"ns",
            "otherData":{"events":3,"lost":0}}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("displayTimeUnit"), Some(&Json::Str("ns".to_string())));
        let Some(Json::Arr(events)) = v.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        assert_eq!(events[0].get("ph"), Some(&Json::Str("M".to_string())));
    }

    #[test]
    fn json_reader_rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trace_validator_accepts_a_well_formed_trace() {
        let doc = r#"{"traceEvents":[
            {"ph":"M","name":"process_name","pid":1,"args":{"name":"mrl"}},
            {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"driver"}},
            {"ph":"B","name":"ingest","cat":"span","pid":1,"tid":0,"ts":1.000},
            {"ph":"X","name":"seal","cat":"engine","pid":1,"tid":0,"ts":2.000,"dur":0.500,
             "args":{"level":0}},
            {"ph":"i","name":"rate.transition","cat":"engine","pid":1,"tid":0,"ts":3.000,
             "s":"t","args":{"from":1,"to":2}},
            {"ph":"E","name":"ingest","cat":"span","pid":1,"tid":0,"ts":4.000}
        ]}"#;
        let summary = validate_trace(doc).unwrap();
        assert_eq!(summary.events, 6);
        assert_eq!(summary.span_pairs, 1);
        assert_eq!(summary.complete, 1);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 1);
        assert_eq!(summary.unclosed, 0);
        assert_eq!(summary.orphan_ends, 0);
    }

    #[test]
    fn trace_validator_rejects_structural_defects() {
        let cases = [
            ("{}", "no `traceEvents`"),
            (r#"{"traceEvents":{}}"#, "must be an array"),
            (r#"{"traceEvents":[{"pid":1}]}"#, "missing `ph`"),
            (r#"{"traceEvents":[{"ph":"Z","pid":1}]}"#, "unknown phase"),
            (
                r#"{"traceEvents":[{"ph":"X","name":"seal","cat":"c","pid":1,"tid":0,"ts":1}]}"#,
                "missing `dur`",
            ),
            (
                r#"{"traceEvents":[{"ph":"i","name":"d","cat":"c","pid":1,"tid":0,"ts":1}]}"#,
                "missing `s`",
            ),
            (
                r#"{"traceEvents":[{"ph":"M","name":"bogus","pid":1,"args":{"name":"x"}}]}"#,
                "unknown metadata",
            ),
            (
                r#"{"traceEvents":[
                    {"ph":"B","name":"a","cat":"s","pid":1,"tid":0,"ts":1},
                    {"ph":"B","name":"b","cat":"s","pid":1,"tid":0,"ts":2},
                    {"ph":"E","name":"a","cat":"s","pid":1,"tid":0,"ts":3}
                ]}"#,
                "crosses open span",
            ),
        ];
        for (doc, needle) in cases {
            let err = validate_trace(doc).unwrap_err();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn trace_validator_tolerates_ring_overwrite_artifacts() {
        // A begin whose end was never recorded, and an end whose begin
        // was overwritten out of the ring, are counted but not fatal.
        let doc = r#"{"traceEvents":[
            {"ph":"E","name":"lost","cat":"s","pid":1,"tid":0,"ts":1},
            {"ph":"B","name":"open","cat":"s","pid":1,"tid":0,"ts":2}
        ]}"#;
        let summary = validate_trace(doc).unwrap();
        assert_eq!(summary.orphan_ends, 1);
        assert_eq!(summary.unclosed, 1);
        assert_eq!(summary.span_pairs, 0);
    }

    #[test]
    fn prom_validator_accepts_the_exporter_shapes() {
        let doc = "\
# TYPE engine_collapses counter\n\
engine_collapses 42\n\
# TYPE engine_seal_level gauge\n\
engine_seal_level{level=\"0\"} 3\n\
engine_seal_level{level=\"1\",kernel=\"run_merge\"} 1\n\
# TYPE batch_latency summary\n\
batch_latency{quantile=\"0.5\"} 0.0125\n\
batch_latency_sum 1.5\n\
batch_latency_count 120\n\
weird_values{a=\"esc\\\"aped\\n\"} NaN\n\
mrl_obs_dropped_updates 0 1700000000000\n";
        let summary = validate_prom(doc).unwrap();
        assert_eq!(summary.samples, 8);
        assert_eq!(summary.types, 3);
    }

    #[test]
    fn prom_validator_rejects_format_violations() {
        let cases = [
            ("# TYPE 9bad counter\nx 1\n", "bad metric name"),
            ("# TYPE x wibble\nx 1\n", "unknown metric type"),
            ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate"),
            ("2fast 1\n", "bad metric name"),
            ("x{9l=\"v\"} 1\n", "bad label name"),
            ("x{l=unquoted} 1\n", "label value must be quoted"),
            ("x{l=\"v\"\n", "expected `,` or `}`"),
            ("x not_a_number\n", "bad sample value"),
            ("x 1 notatimestamp\n", "bad timestamp"),
            ("x 1 2 3\n", "trailing tokens"),
            ("# TYPE x counter\n", "no sample lines"),
        ];
        for (doc, needle) in cases {
            let err = validate_prom(doc).unwrap_err();
            assert!(err.contains(needle), "{doc:?} -> {err}");
        }
    }
}
