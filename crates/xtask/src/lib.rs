//! The `cargo xtask lint` workspace pass: concurrency-hygiene rules the
//! compiler cannot express, enforced over `crates/*/src`.
//!
//! | Rule | Enforces |
//! |------|----------|
//! | `MRL-L001` | every atomic `Ordering::` use carries an `// ordering:` justification (same or preceding line) |
//! | `MRL-L002` | `Instant::now` and `SystemTime::now` only inside `mrl-obs`'s timer module — everything else must go through `ScopedTimer` (or the journal clock) so disabled metrics stay zero-cost |
//! | `MRL-L003` | `thread::spawn` and `.unwrap()` on channel/join results only inside `mrl-parallel` — thread lifecycle errors must propagate as `ShardedError`, not panics |
//! | `MRL-L004` | `sort_unstable` only in seal/collapse/output modules of the streaming crates — ingestion is sort-free by design |
//! | `MRL-L005` | no `panic!`/`.expect(`/`unreachable!`/`todo!`/`unimplemented!` in library crates' non-test code (pre-existing sites are pinned in the baseline ratchet) |
//!
//! Test code (`#[cfg(test)]` modules) is skipped; string literals and
//! comments are lexed out so patterns inside them never match.
//!
//! Every finding carries a **fingerprint**: a 64-bit FNV-1a hash of
//! `(rule, path, whitespace-normalised snippet, occurrence index)`. The
//! fingerprint is independent of line numbers, so unrelated edits above a
//! finding do not churn CI diffs, while a *new* occurrence of an already
//! known snippet still gets a fresh fingerprint. The committed baseline
//! (`crates/xtask/lint-baseline.txt`) grandfathers pre-existing findings;
//! `cargo xtask lint` fails only on fingerprints not in the baseline, and
//! `--update-baseline` re-pins it.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod sarif;
pub mod validate;

/// One source line split into its code and comment parts, with string
/// literal contents blanked out of the code.
#[derive(Debug, Default, Clone)]
pub struct SourceLine {
    /// Code with comments removed and string/char contents replaced by
    /// spaces (delimiters kept), so lint patterns never match text.
    pub code: String,
    /// The comment text of this line (line and block comments merged).
    pub comment: String,
    /// True if this line sits inside a `#[cfg(test)]` module block.
    pub in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lex `src` into per-line code/comment splits. The lexer understands
/// line/block (nested) comments, string, raw-string and char literals,
/// and lifetimes; it is deliberately approximate beyond that — good
/// enough for pattern rules, not a parser.
pub fn lex(src: &str) -> Vec<SourceLine> {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = LexState::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if state == LexState::Str {
                cur.code.push(' '); // keep multi-line strings blanked
            }
            i += 1;
            continue;
        }
        match state {
            LexState::Normal => match c {
                '/' if next == Some('/') => {
                    // Line comment: consume to end of line into `comment`.
                    while i < chars.len() && chars[i] != '\n' {
                        cur.comment.push(chars[i]);
                        i += 1;
                    }
                    continue;
                }
                '/' if next == Some('*') => {
                    state = LexState::Block(1);
                    i += 2;
                    continue;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('r');
                        cur.code.push('"');
                        state = LexState::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    cur.code.push(c);
                    i += 1;
                    continue;
                }
                '"' => {
                    cur.code.push('"');
                    state = LexState::Str;
                    i += 1;
                    continue;
                }
                '\'' => {
                    // Char literal if it closes within a couple of chars
                    // (`'a'`, `'\n'`, `'\u{..}'`); otherwise a lifetime.
                    let is_char =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    cur.code.push('\'');
                    if is_char {
                        state = LexState::Char;
                    }
                    i += 1;
                    continue;
                }
                _ => {
                    cur.code.push(c);
                    i += 1;
                    continue;
                }
            },
            LexState::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Normal
                    } else {
                        LexState::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
                continue;
            }
            LexState::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if next.is_some() {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = LexState::Normal;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
                continue;
            }
            LexState::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        state = LexState::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
                continue;
            }
            LexState::Char => {
                if c == '\\' && next.is_some() {
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = LexState::Normal;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
                continue;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_blocks(&mut lines);
    lines
}

/// Flag every line inside a `#[cfg(test)] mod … { … }` block (attributes
/// between the cfg and the mod are tolerated) as test code.
fn mark_test_blocks(lines: &mut [SourceLine]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        if code.starts_with("#[cfg(") && code.contains("test") {
            // Find the mod opening within the next few lines.
            let mut j = i;
            let mut depth: i64 = 0;
            let mut opened = false;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// A lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id, e.g. `MRL-L001`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Whitespace-normalised offending code.
    pub snippet: String,
    /// Stable id: FNV-1a of (rule, path, snippet, occurrence index).
    pub fingerprint: String,
    /// Human explanation of what the rule wants.
    pub message: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{} {} [{}]",
            self.fingerprint, self.rule, self.path, self.line, self.snippet, self.message
        )
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn normalise(code: &str) -> String {
    code.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Files allowed to break a rule, with the justification shown on demand.
const ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "MRL-L002",
        "crates/obs/src/timer.rs",
        "the one sanctioned wall-clock read; everything else uses ScopedTimer",
    ),
    (
        "MRL-L002",
        "crates/bench/src/bin/throughput.rs",
        "the throughput harness exists to measure wall-clock end to end",
    ),
    (
        "MRL-L004",
        "crates/framework/src/buffer.rs",
        "buffer sealing: the §3 sorted-buffer invariant is established here",
    ),
    (
        "MRL-L004",
        "crates/framework/src/runs.rs",
        "sort-free sealing's run-merge fallback is allowed to sort",
    ),
    (
        "MRL-L004",
        "crates/framework/src/engine.rs",
        "seal/collapse/output paths of the engine itself",
    ),
    (
        "MRL-L004",
        "crates/framework/src/snapshot.rs",
        "query snapshots seal the partial buffer copy",
    ),
    (
        "MRL-L004",
        "crates/framework/src/policy.rs",
        "collapse policies order the collapse set",
    ),
    (
        "MRL-L004",
        "crates/framework/src/cdf.rs",
        "output assembly sorts the weighted sample once at finish",
    ),
    (
        "MRL-L004",
        "crates/framework/src/spine.rs",
        "query-spine rebuild sorts the weighted view once per ingest epoch",
    ),
    (
        "MRL-L004",
        "crates/parallel/src/coordinator.rs",
        "cross-shard shipment merge is a collapse",
    ),
    (
        "MRL-L004",
        "crates/sampling/src/reservoir.rs",
        "reservoir output assembly sorts its final sample",
    ),
];

/// Crates whose `src` is scanned. `cli` and `bench` are binaries and
/// exempt from the library-only rules; `xtask` lints itself out.
const LIB_CRATES: &[&str] = &[
    "analysis",
    "baselines",
    "core",
    "datagen",
    "exact",
    "framework",
    "io",
    "obs",
    "parallel",
    "sampling",
];

/// Crates on the streaming hot path, where MRL-L004 (sort confinement)
/// applies; baseline/offline crates sort as part of their algorithms.
const STREAMING_CRATES: &[&str] = &["core", "framework", "io", "obs", "parallel", "sampling"];

fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn allowlisted(rule: &str, path: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(r, p, _)| *r == rule && path.starts_with(p))
}

/// Lint one file's contents. `path` must be workspace-relative with
/// forward slashes.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let lines = lex(src);
    let mut raw: Vec<(&'static str, usize, String, &'static str)> = Vec::new();
    let in_lib = crate_of(path).is_some_and(|c| LIB_CRATES.contains(&c));
    let in_streaming = crate_of(path).is_some_and(|c| STREAMING_CRATES.contains(&c));
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // A justification tag counts on the same line or anywhere in the
        // contiguous comment block immediately above the statement.
        let justified = |tag: &str| {
            if line.comment.contains(tag) {
                return true;
            }
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let prev = &lines[j];
                if !prev.code.trim().is_empty() || prev.comment.is_empty() {
                    return false;
                }
                if prev.comment.contains(tag) {
                    return true;
                }
            }
            false
        };
        if code.contains("Ordering::") && !justified("ordering:") && !allowlisted("MRL-L001", path)
        {
            raw.push((
                "MRL-L001",
                idx,
                code.clone(),
                "atomic ordering needs an `// ordering:` justification on this or the preceding line",
            ));
        }
        if (code.contains("Instant::now") || code.contains("SystemTime::now"))
            && !allowlisted("MRL-L002", path)
        {
            raw.push((
                "MRL-L002",
                idx,
                code.clone(),
                "wall-clock reads are confined to mrl-obs::timer; use ScopedTimer or the journal clock",
            ));
        }
        if !path.starts_with("crates/parallel/") && !allowlisted("MRL-L003", path) {
            let spawns = code.contains("thread::spawn");
            let channel_unwrap = code.contains(".unwrap()")
                && (code.contains(".recv(")
                    || code.contains(".try_recv(")
                    || code.contains(".send(")
                    || code.contains(".try_send(")
                    || code.contains(".join()"));
            if spawns || channel_unwrap {
                raw.push((
                    "MRL-L003",
                    idx,
                    code.clone(),
                    "thread lifecycle belongs to mrl-parallel; propagate errors (ShardedError), don't spawn or unwrap channels here",
                ));
            }
        }
        if in_streaming && code.contains("sort_unstable") && !allowlisted("MRL-L004", path) {
            raw.push((
                "MRL-L004",
                idx,
                code.clone(),
                "streaming-path sorting is confined to seal/collapse/output modules (ingestion is sort-free)",
            ));
        }
        if in_lib
            && (code.contains("panic!(")
                || code.contains(".expect(")
                || code.contains("unreachable!(")
                || code.contains("todo!(")
                || code.contains("unimplemented!("))
            && !allowlisted("MRL-L005", path)
        {
            raw.push((
                "MRL-L005",
                idx,
                code.clone(),
                "library code must not panic!/expect/unreachable!/todo!/unimplemented! outside tests (grandfathered sites live in the baseline)",
            ));
        }
    }
    // Assign occurrence indices per (rule, normalised snippet) so moving a
    // finding does not change its fingerprint but duplicating it does.
    let mut out = Vec::with_capacity(raw.len());
    for (i, (rule, idx, code, message)) in raw.iter().enumerate() {
        let snippet = normalise(code);
        let occurrence = raw[..i]
            .iter()
            .filter(|(r, _, c, _)| r == rule && normalise(c) == snippet)
            .count();
        let fp = fnv1a64(format!("{rule}\0{path}\0{snippet}\0{occurrence}").as_bytes());
        out.push(Violation {
            rule,
            path: path.to_string(),
            line: idx + 1,
            snippet,
            fingerprint: format!("{fp:016x}"),
            message,
        });
    }
    out
}

fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return files;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        // Skip the tooling crates: their sources are full of rule
        // pattern strings and comparator code that would read as
        // findings of the very rules they implement.
        if name == "xtask" || name == "analyzer" {
            continue;
        }
        walk(&entry.path().join("src"), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Count `// alloc:` justification tags across `crates/*/src` (tooling
/// crates excluded — the same file set the lint pass covers). Each tag
/// admits one allocation site on the per-element ingest path (MRL-A003),
/// so the total is the workspace's hot-path allocation budget; `cargo
/// xtask analyze` ratchets it against `crates/xtask/alloc-budget.txt`.
/// Returns the total plus per-file counts for reporting.
pub fn count_alloc_tags(root: &Path) -> std::io::Result<(usize, Vec<(String, usize)>)> {
    let mut per_file = Vec::new();
    let mut total = 0usize;
    for file in collect_sources(root) {
        let src = std::fs::read_to_string(&file)?;
        let count = src
            .lines()
            .filter(|l| l.trim_start().starts_with("// alloc:"))
            .count();
        if count > 0 {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            per_file.push((rel, count));
            total += count;
        }
    }
    per_file.sort();
    Ok((total, per_file))
}

/// Parse an alloc-budget file: the first non-comment line is the pinned
/// tag count.
pub fn parse_alloc_budget(contents: &str) -> Option<usize> {
    contents
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse().ok())
}

/// Tighten-only re-pin decision for `cargo xtask analyze --prune`:
/// pruning may keep or shrink the alloc-tag budget in the same pass that
/// drops stale baseline entries, but never grow it — a higher live count
/// is a deliberate `--update-baseline` decision, not a prune side
/// effect. Returns the count to pin, or `Err` with the committed budget
/// the live count exceeds. A missing budget pins fresh.
pub fn prune_alloc_budget(count: usize, budget: Option<usize>) -> Result<usize, usize> {
    match budget {
        Some(b) if count > b => Err(b),
        _ => Ok(count),
    }
}

/// Render the alloc-budget file for a pinned tag count.
pub fn render_alloc_budget(count: usize) -> String {
    format!(
        "# MRL-A003 alloc-tag budget: the number of `// alloc:` justification\n\
         # tags across crates/*/src (tooling crates excluded). `cargo xtask\n\
         # analyze` fails when the live count exceeds this (the hot path gained\n\
         # an allocation site) and when it drops below (re-pin the tighter count\n\
         # with `cargo xtask analyze --prune`). The goal is for this number to\n\
         # shrink, never grow.\n\
         {count}\n"
    )
}

/// Lint every `crates/*/src` file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for file in collect_sources(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        violations.extend(lint_file(&rel, &src));
    }
    violations.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    Ok(violations)
}

/// Parse a baseline file: first whitespace-separated token of each
/// non-comment line is a fingerprint.
pub fn parse_baseline(contents: &str) -> Vec<String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

/// Render violations in the committed baseline format.
pub fn render_baseline(violations: &[Violation]) -> String {
    let mut out = String::from(
        "# cargo xtask lint baseline: grandfathered findings by fingerprint.\n\
         # Regenerate with `cargo xtask lint --update-baseline`; the goal is\n\
         # for this file to shrink, never grow.\n",
    );
    for v in violations {
        out.push_str(&format!(
            "{} {} {} {}\n",
            v.fingerprint, v.rule, v.path, v.snippet
        ));
    }
    out
}
