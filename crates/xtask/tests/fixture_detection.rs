//! The linter must (a) catch every seeded violation in the fixture, (b)
//! stay silent on the decoys, (c) produce fingerprints that are stable
//! across runs and line movement but distinct across duplicates, and (d)
//! pass the real workspace modulo the committed baseline.

use std::collections::HashSet;
use std::path::Path;

fn fixture() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded.rs");
    std::fs::read_to_string(path).expect("fixture exists")
}

/// Lint the fixture as if it lived in a streaming library crate, so every
/// rule's scope applies.
fn lint_fixture() -> Vec<xtask::Violation> {
    xtask::lint_file("crates/framework/src/seeded.rs", &fixture())
}

#[test]
fn every_seeded_violation_is_caught() {
    let violations = lint_fixture();
    let count = |rule: &str| violations.iter().filter(|v| v.rule == rule).count();
    assert_eq!(count("MRL-L001"), 1, "untagged Ordering:: use");
    assert_eq!(count("MRL-L002"), 1, "Instant::now outside mrl-obs");
    assert_eq!(count("MRL-L003"), 2, "thread::spawn and join().unwrap()");
    assert_eq!(count("MRL-L004"), 1, "sort_unstable on the streaming path");
    assert_eq!(
        count("MRL-L005"),
        6,
        "two expects, a panic!, and the three placeholder macros"
    );
}

#[test]
fn decoys_do_not_fire() {
    let violations = lint_fixture();
    for v in &violations {
        assert!(
            v.line < 33,
            "decoy or test code fired {} at line {}: {}",
            v.rule,
            v.line,
            v.snippet
        );
    }
}

#[test]
fn fingerprints_are_stable_and_distinct() {
    let a = lint_fixture();
    let b = lint_fixture();
    assert_eq!(a, b, "linting is deterministic");
    let unique: HashSet<_> = a.iter().map(|v| &v.fingerprint).collect();
    assert_eq!(
        unique.len(),
        a.len(),
        "every finding has a distinct fingerprint"
    );

    // Prepending an unrelated line must not churn any fingerprint…
    let shifted = format!("pub const PAD: u64 = 0;\n{}", fixture());
    let c = xtask::lint_file("crates/framework/src/seeded.rs", &shifted);
    let fps = |vs: &[xtask::Violation]| -> Vec<String> {
        vs.iter().map(|v| v.fingerprint.clone()).collect()
    };
    assert_eq!(fps(&a), fps(&c), "fingerprints survive line movement");
    // …while the line numbers do move.
    assert!(a.iter().zip(&c).all(|(x, y)| x.line + 1 == y.line));

    // A different path yields different fingerprints for the same code.
    let d = xtask::lint_file("crates/io/src/seeded.rs", &fixture());
    assert!(fps(&a).iter().all(|f| !fps(&d).contains(f)));
}

#[test]
fn duplicated_violation_gets_a_new_fingerprint() {
    let src = "fn f() {\n    let _ = Some(1u64).expect(\"x\");\n}\n";
    let twice = "fn f() {\n    let _ = Some(1u64).expect(\"x\");\n    let _ = Some(1u64).expect(\"x\");\n}\n";
    let one = xtask::lint_file("crates/framework/src/dup.rs", src);
    let two = xtask::lint_file("crates/framework/src/dup.rs", twice);
    assert_eq!(one.len(), 1);
    assert_eq!(two.len(), 2);
    assert_eq!(
        one[0].fingerprint, two[0].fingerprint,
        "first occurrence is stable"
    );
    assert_ne!(
        two[0].fingerprint, two[1].fingerprint,
        "the ratchet sees the copy"
    );
}

#[test]
fn baseline_roundtrip_parses_every_fingerprint() {
    let violations = lint_fixture();
    let rendered = xtask::render_baseline(&violations);
    let parsed = xtask::parse_baseline(&rendered);
    assert_eq!(
        parsed,
        violations
            .iter()
            .map(|v| v.fingerprint.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn alloc_budget_roundtrip_and_parse_edge_cases() {
    let rendered = xtask::render_alloc_budget(22);
    assert_eq!(xtask::parse_alloc_budget(&rendered), Some(22));
    // Comments and blank lines are skipped; the first data line wins.
    assert_eq!(xtask::parse_alloc_budget("# c\n\n7\n9\n"), Some(7));
    assert_eq!(xtask::parse_alloc_budget("# only comments\n"), None);
    assert_eq!(xtask::parse_alloc_budget("not a number\n"), None);
}

#[test]
fn alloc_budget_prune_only_tightens() {
    // `--prune` re-pins equal or shrunken counts in one pass…
    assert_eq!(xtask::prune_alloc_budget(20, Some(22)), Ok(20));
    assert_eq!(xtask::prune_alloc_budget(22, Some(22)), Ok(22));
    // …pins fresh when no budget is committed yet…
    assert_eq!(xtask::prune_alloc_budget(5, None), Ok(5));
    // …and refuses to grow the budget as a side effect.
    assert_eq!(xtask::prune_alloc_budget(23, Some(22)), Err(22));
}

#[test]
fn workspace_alloc_tag_count_matches_committed_budget() {
    // Mirrors the `cargo xtask analyze` tag ratchet: the live count of
    // `// alloc:` tags must equal the pinned budget exactly — above means
    // the hot path gained an allocation site, below means the tighter
    // count was never committed.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let (count, per_file) = xtask::count_alloc_tags(&root).expect("sources readable");
    let budget = std::fs::read_to_string(root.join("crates/xtask/alloc-budget.txt"))
        .ok()
        .as_deref()
        .and_then(xtask::parse_alloc_budget)
        .expect("committed alloc budget");
    assert_eq!(
        count, budget,
        "live `// alloc:` tag count diverged from the pinned budget; per-file: {per_file:#?}"
    );
}

#[test]
fn workspace_is_clean_modulo_committed_baseline() {
    // Mirrors what `cargo xtask lint` does in CI: the tree must produce no
    // finding whose fingerprint is missing from the committed baseline.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let violations = xtask::lint_workspace(&root).expect("sources readable");
    let baseline = std::fs::read_to_string(root.join("crates/xtask/lint-baseline.txt"))
        .map(|c| xtask::parse_baseline(&c))
        .unwrap_or_default();
    let new: Vec<_> = violations
        .iter()
        .filter(|v| !baseline.contains(&v.fingerprint))
        .collect();
    assert!(new.is_empty(), "new lint findings: {new:#?}");
}
