//! Lint fixture: one deliberate violation of every rule, plus decoys that
//! must NOT fire (tags, test code, strings, comments). Never compiled —
//! only fed to the linter by `tests/fixture_detection.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn violations(flag: &AtomicU64) {
    // L001: untagged ordering.
    flag.store(1, Ordering::Relaxed);
    // L002: wall-clock read outside mrl-obs::timer.
    let _t = Instant::now();
    // L003: spawning outside mrl-parallel…
    let h = std::thread::spawn(|| 1u64);
    // …and unwrapping the join result.
    let _ = h.join().unwrap();
    // L004: sorting on the streaming path outside a seal/collapse module.
    let mut v = vec![3u64, 1, 2];
    v.sort_unstable();
    // L005 (twice, to prove occurrence indices disambiguate):
    let _a = Some(1u64).expect("present");
    let _b = Some(2u64).expect("present");
    if v.is_empty() {
        panic!("unreachable");
    }
    // L005 also covers the placeholder panic macros:
    match v.len() {
        0 => unreachable!(),
        1 => todo!(),
        _ => unimplemented!(),
    }
}

pub fn decoys(flag: &AtomicU64) {
    // ordering: relaxed — justified, must not fire.
    flag.store(2, Ordering::Relaxed);
    // A tag atop the comment block also counts.
    // ordering: acquire — spans a
    // two-line explanation.
    flag.store(3, Ordering::Acquire);
    // Patterns inside strings are not code:
    let _s = "Instant::now() and panic!(boom) and v.sort_unstable()";
    let _p = "unreachable!() and todo!() and unimplemented!() are text";
    let _r = r#"thread::spawn in a raw string"#;
    /* Block comments are not code either: Instant::now() */
}

#[cfg(test)]
mod tests {
    // Test code is exempt from every rule.
    #[test]
    fn test_code_is_exempt() {
        let h = std::thread::spawn(|| 1u64);
        assert_eq!(h.join().unwrap(), 1);
        let mut v = vec![2u64, 1];
        v.sort_unstable();
        let _ = std::time::Instant::now();
        let _ = Some(1u64).expect("fine in tests");
    }
}
