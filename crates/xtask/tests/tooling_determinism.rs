//! Dogfood for MRL-A008 applied to the tooling itself: the analyzer's
//! exported artifacts must be byte-identical across runs. Two
//! independent workspace loads and analyses (fresh maps, fresh
//! fingerprinting) must render the same `--json` and `--sarif` bytes —
//! any hash-order iteration or clock read leaking into the writers
//! shows up here as a diff.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .expect("xtask lives two levels under the workspace root")
}

#[test]
fn analyze_exports_are_byte_identical_across_runs() {
    let root = workspace_root();
    let run = || {
        let ws = analyzer::Workspace::load(&root).expect("workspace loads");
        let findings = analyzer::analyze(&ws);
        (
            analyzer::json::render(&findings),
            xtask::sarif::render(&findings),
        )
    };
    let (json_a, sarif_a) = run();
    let (json_b, sarif_b) = run();
    assert_eq!(json_a, json_b, "analyze --json must be reproducible");
    assert_eq!(sarif_a, sarif_b, "analyze --sarif must be reproducible");
    xtask::sarif::validate_sarif(&sarif_a).expect("exported SARIF validates");
}
