//! Streaming (non-materialised) workload generation.
//!
//! For throughput benches and very long inputs, the values are drawn on the
//! fly: an iterator that never allocates the stream. Only the `Random`
//! arrival order can be streamed (global sorts need materialisation — use
//! [`crate::Workload::generate`] for those).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::distributions::{Sampler, ValueDistribution};

/// An infinite, seeded iterator of values from a distribution.
#[derive(Clone, Debug)]
pub struct WorkloadStream {
    sampler: Sampler,
    rng: SmallRng,
    produced: u64,
}

impl WorkloadStream {
    /// Create a stream of `dist` values from `seed`.
    pub fn new(dist: ValueDistribution, seed: u64) -> Self {
        Self {
            sampler: dist.sampler(),
            rng: SmallRng::seed_from_u64(seed),
            produced: 0,
        }
    }

    /// Values produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl Iterator for WorkloadStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.produced += 1;
        Some(self.sampler.sample(&mut self.rng))
    }
}

/// A stream whose value distribution *drifts* over time: normal values
/// whose mean moves linearly from `start_mean` to `end_mean` across
/// `horizon` elements (and stays at `end_mean` after).
///
/// Drift is the adversarial case for any sketch that freezes a uniform
/// sample early: old samples describe a distribution that no longer
/// exists. The unknown-`N` algorithm's at-every-prefix guarantee is about
/// the *multiset seen so far*, which remains exact under drift — the
/// `prefix_validity` experiment demonstrates this.
#[derive(Clone, Debug)]
pub struct DriftingStream {
    start_mean: f64,
    end_mean: f64,
    sigma: f64,
    horizon: u64,
    produced: u64,
    rng: SmallRng,
}

impl DriftingStream {
    /// Create a drifting stream.
    ///
    /// # Panics
    /// Panics if `sigma < 0` or `horizon == 0`.
    pub fn new(start_mean: f64, end_mean: f64, sigma: f64, horizon: u64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(horizon > 0, "horizon must be positive");
        Self {
            start_mean,
            end_mean,
            sigma,
            horizon,
            produced: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The current mean (where the drift has reached).
    pub fn current_mean(&self) -> f64 {
        let t = (self.produced as f64 / self.horizon as f64).min(1.0);
        self.start_mean + t * (self.end_mean - self.start_mean)
    }
}

impl Iterator for DriftingStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        use rand::Rng;
        let mean = self.current_mean();
        self.produced += 1;
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        Some((mean + self.sigma * z).max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalOrder, Workload};

    #[test]
    fn stream_matches_materialised_workload() {
        let dist = ValueDistribution::Uniform { range: 12345 };
        let streamed: Vec<u64> = WorkloadStream::new(dist, 77).take(500).collect();
        let materialised = Workload {
            values: dist,
            order: ArrivalOrder::Random,
            n: 500,
            seed: 77,
        }
        .generate();
        assert_eq!(streamed, materialised);
    }

    #[test]
    fn stream_is_unbounded() {
        let mut s = WorkloadStream::new(ValueDistribution::FewDistinct { distinct: 3 }, 5);
        for _ in 0..100_000 {
            assert!(s.next().is_some());
        }
        assert_eq!(s.produced(), 100_000);
    }

    #[test]
    fn drift_moves_the_mean() {
        let mut s = DriftingStream::new(1_000.0, 9_000.0, 100.0, 50_000, 3);
        let early: Vec<u64> = s.by_ref().take(5_000).collect();
        let _skip: Vec<u64> = s.by_ref().take(40_000).collect();
        let late: Vec<u64> = s.by_ref().take(5_000).collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(mean(&early) < 2_500.0, "early mean {}", mean(&early));
        assert!(mean(&late) > 7_500.0, "late mean {}", mean(&late));
    }

    #[test]
    fn drift_saturates_at_end_mean() {
        let mut s = DriftingStream::new(0.0, 100.0, 0.0, 10, 1);
        let _burn: Vec<u64> = s.by_ref().take(100).collect();
        assert!((s.current_mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn drift_is_reproducible() {
        let a: Vec<u64> = DriftingStream::new(5.0, 10.0, 1.0, 100, 9)
            .take(50)
            .collect();
        let b: Vec<u64> = DriftingStream::new(5.0, 10.0, 1.0, 100, 9)
            .take(50)
            .collect();
        assert_eq!(a, b);
    }
}
