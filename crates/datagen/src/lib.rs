//! Synthetic workload generators for quantile evaluation.
//!
//! The paper's §1.3 requires that "the efficiency and the correctness of
//! the algorithm should be data independent. It should not be influenced by
//! the arrival distribution or the value distribution of the input." The
//! accuracy experiments therefore sweep both axes:
//!
//! * **value distributions** — uniform, normal, zipfian, exponential,
//!   few-distinct ([`ValueDistribution`]);
//! * **arrival orders** — random, sorted ascending/descending, organ-pipe
//!   ([`ArrivalOrder`]);
//!
//! plus a synthetic "quarterly sales" workload ([`sales_stream`]) standing
//! in for the paper's motivating business-intelligence examples (§1.1):
//! skewed revenue values whose extreme quantiles characterise outliers.
//!
//! Generators are deterministic given a seed and stream as iterators so
//! arbitrarily long inputs never need materialising.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod distributions;
mod sales;
mod stream;

pub use distributions::{ArrivalOrder, Sampler, ValueDistribution, Workload};
pub use sales::{sales_stream, SaleRecord};
pub use stream::{DriftingStream, WorkloadStream};
