//! The "quarterly sales table" workload of §1.1.
//!
//! The paper motivates extreme quantiles with business data: "the 95th
//! quantile in a quarterly sales table for all franchises of a company".
//! This generator emulates such a table: per-franchise revenue records with
//! log-normally distributed amounts (the classic shape of transaction
//! sizes: many small sales, a long right tail of large ones).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One row of the synthetic sales table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaleRecord {
    /// Franchise identifier in `[0, franchises)`.
    pub franchise: u32,
    /// Sale amount in cents.
    pub amount_cents: u64,
}

/// A seeded iterator of [`SaleRecord`]s across `franchises` outlets.
///
/// Amounts are log-normal with location `mu` and scale `sigma` (natural-log
/// parameters), in cents. With the defaults used by the examples
/// (`mu = ln(50_00)`, `sigma = 1.0`) the median sale is ~$50 while the top
/// 1% exceeds ~$500 — a realistic right-skew for the paper's outlier
/// discussion.
pub fn sales_stream(
    franchises: u32,
    mu: f64,
    sigma: f64,
    seed: u64,
) -> impl Iterator<Item = SaleRecord> {
    assert!(franchises >= 1, "need at least one franchise");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mut rng = SmallRng::seed_from_u64(seed);
    std::iter::from_fn(move || {
        let franchise = rng.gen_range(0..franchises);
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let amount_cents = (mu + sigma * z).exp().round().max(1.0) as u64;
        Some(SaleRecord {
            franchise,
            amount_cents,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amounts_are_right_skewed() {
        let sales: Vec<u64> = sales_stream(100, (50_00f64).ln(), 1.0, 42)
            .take(50_000)
            .map(|s| s.amount_cents)
            .collect();
        let mut sorted = sales.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[(sorted.len() as f64 * 0.99) as usize];
        // Median around $50 (log-normal median = e^mu).
        assert!((40_00..60_00).contains(&median), "median {median}");
        // Heavy right tail: p99 is many times the median.
        assert!(p99 > 5 * median, "p99 {p99} vs median {median}");
        let mean = sales.iter().sum::<u64>() as f64 / sales.len() as f64;
        assert!(mean > median as f64, "log-normal mean must exceed median");
    }

    #[test]
    fn franchises_are_covered() {
        let mut seen = std::collections::BTreeSet::new();
        for s in sales_stream(10, 5.0, 0.5, 7).take(1_000) {
            assert!(s.franchise < 10);
            seen.insert(s.franchise);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn stream_is_reproducible() {
        let a: Vec<SaleRecord> = sales_stream(5, 6.0, 1.0, 9).take(100).collect();
        let b: Vec<SaleRecord> = sales_stream(5, 6.0, 1.0, 9).take(100).collect();
        assert_eq!(a, b);
    }
}
