//! Value distributions and arrival orders.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How stream values are distributed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueDistribution {
    /// Uniform integers in `[0, range)`.
    Uniform {
        /// Exclusive upper bound.
        range: u64,
    },
    /// Rounded samples of a normal distribution (Box–Muller), shifted to be
    /// non-negative: `max(0, mean + sigma·Z)`.
    Normal {
        /// Location.
        mean: f64,
        /// Scale.
        sigma: f64,
    },
    /// Zipf-distributed ranks in `[1, n]` with exponent `s` (heavy head):
    /// value `v` occurs with probability proportional to `v^{-s}`.
    Zipf {
        /// Number of distinct values.
        n: u64,
        /// Skew exponent (> 0).
        s: f64,
    },
    /// Exponentially distributed values scaled by `scale` (heavy tail).
    Exponential {
        /// Scale (mean of the underlying exponential).
        scale: f64,
    },
    /// Only `distinct` different values, uniformly likely (stress for
    /// duplicate handling).
    FewDistinct {
        /// Number of distinct values.
        distinct: u64,
    },
}

impl ValueDistribution {
    /// Build a sampler (pre-computes the Zipf CDF table when needed).
    pub fn sampler(&self) -> Sampler {
        let zipf_cdf = if let ValueDistribution::Zipf { n, s } = *self {
            assert!(n >= 1, "zipf needs at least one value");
            assert!(s > 0.0, "zipf exponent must be positive");
            assert!(n <= 10_000_000, "zipf table capped at 10^7 distinct values");
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0f64;
            for v in 1..=n {
                acc += (v as f64).powf(-s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            Some(cdf)
        } else {
            None
        };
        Sampler {
            dist: *self,
            zipf_cdf,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ValueDistribution::Uniform { .. } => "uniform",
            ValueDistribution::Normal { .. } => "normal",
            ValueDistribution::Zipf { .. } => "zipf",
            ValueDistribution::Exponential { .. } => "exponential",
            ValueDistribution::FewDistinct { .. } => "few-distinct",
        }
    }
}

/// A ready-to-draw sampler for a [`ValueDistribution`].
#[derive(Clone, Debug)]
pub struct Sampler {
    dist: ValueDistribution,
    zipf_cdf: Option<Vec<f64>>,
}

impl Sampler {
    /// Draw one value.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self.dist {
            ValueDistribution::Uniform { range } => rng.gen_range(0..range.max(1)),
            ValueDistribution::Normal { mean, sigma } => {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + sigma * z).max(0.0).round() as u64
            }
            ValueDistribution::Zipf { .. } => {
                // Exact inverse-CDF lookup on the pre-computed table.
                let cdf = self.zipf_cdf.as_ref().expect("sampler built with table");
                let u: f64 = rng.gen();
                match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF is NaN-free")) {
                    Ok(i) | Err(i) => (i as u64 + 1).min(cdf.len() as u64),
                }
            }
            ValueDistribution::Exponential { scale } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * scale).round() as u64
            }
            ValueDistribution::FewDistinct { distinct } => rng.gen_range(0..distinct.max(1)),
        }
    }
}

/// The order in which generated values arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// As drawn (exchangeable).
    Random,
    /// Sorted ascending — the adversarial case for naive sampling.
    SortedAscending,
    /// Sorted descending.
    SortedDescending,
    /// First half ascending, second half descending ("organ pipe").
    OrganPipe,
}

impl ArrivalOrder {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalOrder::Random => "random",
            ArrivalOrder::SortedAscending => "sorted-asc",
            ArrivalOrder::SortedDescending => "sorted-desc",
            ArrivalOrder::OrganPipe => "organ-pipe",
        }
    }
}

/// A complete workload: distribution × arrival order × length × seed.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Value distribution.
    pub values: ValueDistribution,
    /// Arrival order.
    pub order: ArrivalOrder,
    /// Stream length.
    pub n: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Materialise the workload (needed for non-random arrival orders and
    /// for exact ground-truth computation).
    pub fn generate(&self) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let sampler = self.values.sampler();
        let mut data: Vec<u64> = (0..self.n).map(|_| sampler.sample(&mut rng)).collect();
        match self.order {
            ArrivalOrder::Random => {}
            ArrivalOrder::SortedAscending => data.sort_unstable(),
            ArrivalOrder::SortedDescending => {
                data.sort_unstable();
                data.reverse();
            }
            ArrivalOrder::OrganPipe => {
                data.sort_unstable();
                let mut pipe = Vec::with_capacity(data.len());
                let mut tail = Vec::with_capacity(data.len() / 2);
                for (i, v) in data.into_iter().enumerate() {
                    if i % 2 == 0 {
                        pipe.push(v);
                    } else {
                        tail.push(v);
                    }
                }
                pipe.extend(tail.into_iter().rev());
                data = pipe;
            }
        }
        data
    }

    /// A descriptive label `distribution/order`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.values.label(), self.order.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = ValueDistribution::Uniform { range: 100 }.sampler();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) < 100);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let d = ValueDistribution::Uniform { range: 1000 }.sampler();
        let mut r = rng();
        let mean: f64 = (0..20_000).map(|_| d.sample(&mut r) as f64).sum::<f64>() / 20_000.0;
        assert!((mean - 499.5).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn normal_concentrates_around_mean() {
        let d = ValueDistribution::Normal {
            mean: 500.0,
            sigma: 50.0,
        }
        .sampler();
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
        let within_2sigma = xs.iter().filter(|&&x| (400..=600).contains(&x)).count();
        assert!(within_2sigma as f64 / xs.len() as f64 > 0.93);
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let d = ValueDistribution::Zipf { n: 1000, s: 1.2 }.sampler();
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| (1..=1000).contains(&x)));
        let ones = xs.iter().filter(|&&x| x == 1).count() as f64 / xs.len() as f64;
        assert!(ones > 0.2, "P[X=1] = {ones} not head-heavy");
    }

    #[test]
    fn exponential_has_heavy_tail() {
        let d = ValueDistribution::Exponential { scale: 100.0 }.sampler();
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 100.0).abs() < 10.0, "mean {mean}");
        assert!(xs.iter().any(|&x| x > 400), "no tail values");
    }

    #[test]
    fn few_distinct_has_exactly_that_many() {
        let d = ValueDistribution::FewDistinct { distinct: 5 }.sampler();
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            seen.insert(d.sample(&mut r));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn workload_is_reproducible() {
        let w = Workload {
            values: ValueDistribution::Uniform { range: 1000 },
            order: ArrivalOrder::Random,
            n: 1000,
            seed: 7,
        };
        assert_eq!(w.generate(), w.generate());
    }

    #[test]
    fn arrival_orders_permute_the_same_multiset() {
        let mk = |order| Workload {
            values: ValueDistribution::Uniform { range: 100 },
            order,
            n: 2_000,
            seed: 11,
        };
        let mut base = mk(ArrivalOrder::Random).generate();
        base.sort_unstable();
        for order in [
            ArrivalOrder::SortedAscending,
            ArrivalOrder::SortedDescending,
            ArrivalOrder::OrganPipe,
        ] {
            let mut v = mk(order).generate();
            v.sort_unstable();
            assert_eq!(v, base, "{order:?} changed the multiset");
        }
    }

    #[test]
    fn sorted_orders_are_sorted() {
        let asc = Workload {
            values: ValueDistribution::Uniform { range: 100 },
            order: ArrivalOrder::SortedAscending,
            n: 500,
            seed: 1,
        }
        .generate();
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let desc = Workload {
            values: ValueDistribution::Uniform { range: 100 },
            order: ArrivalOrder::SortedDescending,
            n: 500,
            seed: 1,
        }
        .generate();
        assert!(desc.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn organ_pipe_rises_then_falls() {
        let pipe = Workload {
            values: ValueDistribution::Uniform { range: 10_000 },
            order: ArrivalOrder::OrganPipe,
            n: 1_000,
            seed: 3,
        }
        .generate();
        let peak = pipe
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap();
        assert!(peak > 300 && peak < 700, "peak at {peak}");
    }
}
