//! Statistical validation of the probabilistic guarantees: failure *rates*
//! over many seeded trials, not just single runs. Trial counts are scaled
//! down in debug builds; run with `--release` for the full sweep.

use mrl_core::{ExtremeValue, OptimizerOptions, Tail, UnknownN};

fn trials() -> u64 {
    if cfg!(miri) {
        2
    } else if cfg!(debug_assertions) {
        8
    } else {
        60
    }
}

fn stream_len() -> u64 {
    if cfg!(miri) {
        4_000
    } else if cfg!(debug_assertions) {
        60_000
    } else {
        400_000
    }
}

/// Normalised rank error of `value` at quantile `phi` within `data`.
fn rank_err(data: &[u64], value: u64, phi: f64) -> f64 {
    let n = data.len() as u64;
    let pos = ((phi * n as f64).ceil() as u64).clamp(1, n);
    let below = data.iter().filter(|&&v| v < value).count() as u64;
    let at_most = data.iter().filter(|&&v| v <= value).count() as u64;
    let dist = if pos < below + 1 {
        below + 1 - pos
    } else {
        pos.saturating_sub(at_most)
    };
    dist as f64 / n as f64
}

#[test]
fn unknown_n_failure_rate_is_far_below_delta_budget() {
    // delta = 0.1 gives a loose budget; with the analysis' conservative
    // Hoeffding constants the observed failure rate should be ~zero. Any
    // failure at all across seeds would indicate a real bug, but we assert
    // the rate, not perfection, to keep the test honest.
    let (eps, delta) = (0.04, 0.1);
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(eps, delta, OptimizerOptions::fast());
    let n = stream_len();
    let data: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
    let mut failures = 0u64;
    let mut total = 0u64;
    for seed in 0..trials() {
        let mut s = UnknownN::<u64>::from_config(config.clone(), seed);
        s.extend(data.iter().copied());
        for phi in [0.1, 0.5, 0.9] {
            total += 1;
            let ans = s.query(phi).unwrap();
            if rank_err(&data, ans, phi) > eps {
                failures += 1;
            }
        }
    }
    let rate = failures as f64 / total as f64;
    assert!(
        rate <= delta,
        "failure rate {rate} over {total} measurements exceeds delta {delta}"
    );
}

#[test]
fn extreme_value_failure_rate_within_delta_budget() {
    let (phi, eps, delta) = (0.01, 0.005, 0.05);
    let n = stream_len();
    let data: Vec<u64> = (0..n).map(|i| (i * 48271) % n).collect();
    let mut failures = 0u64;
    for seed in 0..trials() {
        let mut est = ExtremeValue::<u64>::known_n(phi, eps, delta, n, Tail::Low, seed);
        est.extend(data.iter().copied());
        match est.query() {
            Some(ans) if rank_err(&data, ans, phi) <= eps => {}
            _ => failures += 1,
        }
    }
    let rate = failures as f64 / trials() as f64;
    // Allow generous sampling slack on the rate estimate itself.
    assert!(
        rate <= delta + 0.1,
        "extreme-value failure rate {rate} over {} trials (delta {delta})",
        trials()
    );
}

#[test]
fn expected_rank_of_extreme_estimator_is_phi_n() {
    // Section 7: "an estimator whose expected rank is phi*N". Average the
    // observed rank over seeds and check it brackets phi*N.
    let (phi, eps, delta) = (0.02, 0.01, 0.01);
    let n = stream_len();
    let data: Vec<u64> = (0..n).collect(); // value == rank - 1
    let mut sum_rank = 0.0f64;
    for seed in 0..trials() {
        let mut est = ExtremeValue::<u64>::known_n(phi, eps, delta, n, Tail::Low, 1000 + seed);
        est.extend(data.iter().copied());
        let ans = est.query().expect("nonempty") as f64 + 1.0;
        sum_rank += ans;
    }
    let mean_rank = sum_rank / trials() as f64;
    let target = phi * n as f64;
    assert!(
        (mean_rank - target).abs() <= 0.6 * eps * n as f64,
        "mean rank {mean_rank} vs expected {target}"
    );
}

#[test]
fn answers_at_many_prefixes_respect_epsilon_with_sorted_input() {
    // The unknown-N guarantee holds at every prefix even on sorted input —
    // the case plain reservoir sampling handles poorly when the sample is
    // frozen early.
    let (eps, delta) = (0.05, 0.05);
    let config =
        mrl_analysis::optimizer::optimize_unknown_n_with(eps, delta, OptimizerOptions::fast());
    let n = stream_len();
    let mut failures = 0u64;
    let mut total = 0u64;
    for seed in 0..trials().min(10) {
        let mut s = UnknownN::<u64>::from_config(config.clone(), 77 + seed);
        for i in 0..n {
            s.insert(i); // sorted ascending: value == rank - 1
            if (i + 1) % (n / 5) == 0 {
                let prefix = i + 1;
                for phi in [0.25, 0.75] {
                    total += 1;
                    let ans = s.query(phi).unwrap() as f64;
                    let target = phi * prefix as f64;
                    if (ans - target).abs() > eps * prefix as f64 + 1.0 {
                        failures += 1;
                    }
                }
            }
        }
    }
    let rate = failures as f64 / total as f64;
    assert!(
        rate <= delta + 0.05,
        "prefix failure rate {rate} over {total} checks"
    );
}
