//! Live ε-audit: how much of the promised `ε·N` rank-error budget the
//! collapse tree has actually consumed at this instant.
//!
//! The unknown-`N` guarantee (§4.5) splits the budget: the deterministic
//! tree contributes at most `α·ε·N` (Lemma 4/5: `(W + w_max)/2`), the
//! non-uniform sampling at most `(1−α)·ε·N` with probability `1 − δ`
//! (Lemma 2, via the Hoeffding quantity `X = N²/Σnᵢ²`). The audit exposes
//! both terms as derived gauges so a live stream can be watched for budget
//! pressure long before the certified worst case is reached.

use mrl_obs::MetricsHandle;
use serde::{Deserialize, Serialize};

/// Metric keys published by [`EpsilonAudit::publish`].
pub mod metrics {
    use mrl_obs::Key;

    /// Gauge: stream length `N` at audit time.
    pub const N: Key = Key::new("audit.n");
    /// Gauge: the deterministic tree bound `(W + w_max)/2`, in ranks.
    pub const TREE_BOUND: Key = Key::new("audit.tree_bound");
    /// Gauge: the allowed rank error `ε·N`.
    pub const ALLOWED_ERROR: Key = Key::new("audit.allowed_error");
    /// Gauge: budget consumption `tree_bound / (ε·N)` — the fraction of
    /// the *total* error budget eaten by the deterministic tree. Values at
    /// or below `α` mean the certified split is being respected.
    pub const HEADROOM: Key = Key::new("audit.headroom");
    /// Gauge: the Hoeffding quantity `X = N²/Σnᵢ²` of Lemma 2 (larger is
    /// better; equals `N` before sampling starts).
    pub const HOEFFDING_X: Key = Key::new("audit.hoeffding_x");
}

/// A point-in-time reading of the error-budget consumption.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpsilonAudit {
    /// Stream length `N` at audit time.
    pub n: u64,
    /// The target accuracy `ε`.
    pub epsilon: f64,
    /// The certified deterministic share `α` of the budget (0 when the
    /// sketch carries no such split, e.g. a fixed-rate engine).
    pub alpha: f64,
    /// The deterministic tree bound `(W + w_max)/2`, in ranks.
    pub tree_bound: u64,
    /// The allowed rank error `ε·N`.
    pub allowed_error: f64,
    /// `tree_bound / (ε·N)`: fraction of the total budget consumed by the
    /// tree. `0.0` while the stream is empty.
    pub headroom: f64,
    /// The Hoeffding quantity `X = N²/Σnᵢ²` (Lemma 2). Equals `N` before
    /// sampling onset; larger means tighter sampling-error concentration.
    pub hoeffding_x: f64,
    /// Whether the non-uniform sampler has engaged (rate > 1).
    pub sampling_started: bool,
    /// Current sampling rate `r`.
    pub current_rate: u64,
}

impl EpsilonAudit {
    /// Derive an audit reading from the raw ingredients. `tree_bound` is
    /// `TreeStats::tree_error_bound(w_max)`, `hoeffding_x` is
    /// `TreeStats::hoeffding_x()`.
    pub fn from_parts(
        n: u64,
        epsilon: f64,
        alpha: f64,
        tree_bound: u64,
        hoeffding_x: f64,
        sampling_started: bool,
        current_rate: u64,
    ) -> Self {
        let allowed_error = epsilon * n as f64;
        let headroom = if allowed_error > 0.0 {
            tree_bound as f64 / allowed_error
        } else {
            0.0
        };
        Self {
            n,
            epsilon,
            alpha,
            tree_bound,
            allowed_error,
            headroom,
            hoeffding_x,
            sampling_started,
            current_rate,
        }
    }

    /// True while the deterministic tree stays within its certified share
    /// `α` of the budget (trivially true on an empty stream).
    pub fn within_deterministic_share(&self) -> bool {
        self.n == 0 || self.headroom <= self.alpha + 1e-12
    }

    /// Publish the audit as gauges (see [`metrics`]). No-op on a disabled
    /// handle.
    pub fn publish(&self, sink: &MetricsHandle) {
        sink.gauge_set(metrics::N, self.n as f64);
        sink.gauge_set(metrics::TREE_BOUND, self.tree_bound as f64);
        sink.gauge_set(metrics::ALLOWED_ERROR, self.allowed_error);
        sink.gauge_set(metrics::HEADROOM, self.headroom);
        sink.gauge_set(metrics::HOEFFDING_X, self.hoeffding_x);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use mrl_obs::InMemoryRecorder;

    use super::*;

    #[test]
    fn headroom_is_budget_fraction() {
        let a = EpsilonAudit::from_parts(1_000_000, 0.01, 0.5, 2_500, 1_000_000.0, false, 1);
        assert!((a.allowed_error - 10_000.0).abs() < 1e-9);
        assert!((a.headroom - 0.25).abs() < 1e-12);
        assert!(a.within_deterministic_share());

        let over = EpsilonAudit::from_parts(1_000_000, 0.01, 0.5, 6_000, 1_000_000.0, false, 1);
        assert!(!over.within_deterministic_share());
    }

    #[test]
    fn empty_stream_has_zero_headroom() {
        let a = EpsilonAudit::from_parts(0, 0.01, 0.5, 0, 0.0, false, 1);
        assert_eq!(a.headroom, 0.0);
        assert!(a.within_deterministic_share());
    }

    #[test]
    fn publish_exports_all_gauges() {
        let rec = Arc::new(InMemoryRecorder::new());
        let handle = MetricsHandle::new(rec.clone());
        let a = EpsilonAudit::from_parts(500, 0.1, 0.5, 10, 500.0, false, 1);
        a.publish(&handle);
        assert_eq!(rec.gauge_value(metrics::N), Some(500.0));
        assert_eq!(rec.gauge_value(metrics::TREE_BOUND), Some(10.0));
        assert_eq!(rec.gauge_value(metrics::ALLOWED_ERROR), Some(50.0));
        assert_eq!(rec.gauge_value(metrics::HEADROOM), Some(0.2));
        assert_eq!(rec.gauge_value(metrics::HOEFFDING_X), Some(500.0));
    }

    #[test]
    fn audit_serializes_to_json() {
        let a = EpsilonAudit::from_parts(500, 0.1, 0.5, 10, 500.0, true, 4);
        let json = serde_json::to_string(&a).expect("serializable");
        assert!(json.contains("\"headroom\""));
        assert!(json.contains("\"hoeffding_x\""));
    }
}
