//! Extreme-value estimation (§7).
//!
//! When the requested quantile φ is close to 0 (or 1), the general
//! algorithm is overkill: the paper's "simple algorithm which seems to
//! outperform most other algorithms handily" draws a uniform random sample
//! of size `s` and keeps only its `k = ⌈φ·s⌉` smallest (resp. largest)
//! elements in a bounded heap. The estimate — the k-th order statistic of
//! the sample — has expected rank `φ·N`, and Stein's lemma (Lemma 6) sizes
//! `s` so the estimate is an ε-approximate φ-quantile with probability
//! `1 − δ`:
//!
//! ```text
//! δ ≥ 2^{−s·D(φ;φ−ε)} + 2^{−s·D(φ;φ+ε)}
//! ```
//!
//! The paper's key statistical fact: the rank distribution of an extreme
//! order statistic is more tightly clustered than the median's, so `s` —
//! and especially the retained heap `k = φ·s` — is far smaller than the
//! general algorithm's memory.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mrl_analysis::kl::stein_sample_size;
use mrl_framework::slice_min_max;
use mrl_sampling::{rng_from_seed, BernoulliSampler, Reservoir, SketchRng};

/// Which tail the target quantile sits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tail {
    /// φ close to 0: keep the `k` smallest sample elements.
    Low,
    /// φ close to 1: keep the `k` largest sample elements.
    High,
}

#[derive(Clone, Debug)]
enum SampleMode<T> {
    /// Known `N`: Bernoulli(s/N) coin per element, heap of the k most
    /// extreme sampled elements. Memory `O(k)` — the paper's §7 setting
    /// ("the sampling rate s/N is dependent on N").
    KnownN {
        sampler: BernoulliSampler,
        low_heap: BinaryHeap<T>,           // max-heap of the k smallest
        high_heap: BinaryHeap<Reverse<T>>, // min-heap of the k largest
    },
    /// Unknown `N`: maintain a size-`s` uniform reservoir instead. Memory
    /// `O(s)` — a convenience fallback, not the paper's low-memory claim.
    UnknownN { reservoir: Reservoir<T> },
}

/// Estimator for an extreme φ-quantile (§7).
///
/// ```
/// use mrl_core::{ExtremeValue, Tail};
///
/// let n = 200_000u64;
/// let mut est = ExtremeValue::<u64>::known_n(0.01, 0.005, 1e-4, n, Tail::Low, 7);
/// for v in 0..n {
///     est.insert(v);
/// }
/// let p1 = est.query().unwrap();
/// assert!((p1 as f64) <= 0.015 * n as f64 + 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct ExtremeValue<T> {
    phi: f64,
    epsilon: f64,
    delta: f64,
    tail: Tail,
    s: u64,
    k: u64,
    seen: u64,
    mode: SampleMode<T>,
    rng: SketchRng,
    /// Staging buffer for [`ExtremeValue::extend`], reused across calls.
    stage: Vec<T>,
}

impl<T: Ord + Clone> ExtremeValue<T> {
    /// Estimator for a stream of known length `n`: samples each element
    /// independently with probability `s/n` and retains the `k` most
    /// extreme sampled elements — total memory `k` elements.
    ///
    /// For `Tail::Low`, `φ` is the quantile itself (small); for
    /// `Tail::High`, `φ` is still the quantile (large, e.g. 0.99) and the
    /// symmetric construction on `1−φ` is used internally.
    ///
    /// # Panics
    /// Panics unless `0 < φ < 1`, `0 < ε < 1`, `0 < δ < 1`, `n ≥ 1`.
    pub fn known_n(phi: f64, epsilon: f64, delta: f64, n: u64, tail: Tail, seed: u64) -> Self {
        let phi_eff = effective_phi(phi, tail);
        let (s, k) = stein_sample_size(phi_eff, epsilon, delta);
        let sampler = BernoulliSampler::for_expected_sample(s, n);
        Self {
            phi,
            epsilon,
            delta,
            tail,
            s,
            k,
            seen: 0,
            mode: SampleMode::KnownN {
                sampler,
                // Pre-size to k + 1: the heaps momentarily hold one extra
                // element before the trimming pop, and pre-sizing keeps
                // the per-element push allocation-free after warm-up.
                low_heap: BinaryHeap::with_capacity(k as usize + 1),
                high_heap: BinaryHeap::with_capacity(k as usize + 1),
            },
            rng: rng_from_seed(seed),
            stage: Vec::new(),
        }
    }

    /// Estimator for a stream of unknown length: maintains a size-`s`
    /// reservoir (memory `O(s)`, not `O(k)`) and answers the k-th extreme
    /// of the reservoir scaled to the current stream length.
    ///
    /// # Panics
    /// As [`ExtremeValue::known_n`].
    pub fn unknown_n(phi: f64, epsilon: f64, delta: f64, tail: Tail, seed: u64) -> Self {
        let phi_eff = effective_phi(phi, tail);
        let (s, k) = stein_sample_size(phi_eff, epsilon, delta);
        Self {
            phi,
            epsilon,
            delta,
            tail,
            s,
            k,
            seen: 0,
            mode: SampleMode::UnknownN {
                reservoir: Reservoir::new(s as usize),
            },
            rng: rng_from_seed(seed),
            stage: Vec::new(),
        }
    }

    /// Insert one stream element.
    // alloc: the heaps are pre-sized to k + 1 and trimmed back to k after
    // every push, so pushes reuse capacity after warm-up.
    pub fn insert(&mut self, item: T) {
        self.seen = self.seen.saturating_add(1);
        let k = self.k as usize;
        match &mut self.mode {
            SampleMode::KnownN {
                sampler,
                low_heap,
                high_heap,
            } => {
                if !sampler.accept(&mut self.rng) {
                    return;
                }
                match self.tail {
                    Tail::Low => {
                        low_heap.push(item);
                        if low_heap.len() > k {
                            low_heap.pop();
                        }
                    }
                    Tail::High => {
                        high_heap.push(Reverse(item));
                        if high_heap.len() > k {
                            high_heap.pop();
                        }
                    }
                }
            }
            SampleMode::UnknownN { reservoir } => {
                reservoir.offer(item, &mut self.rng);
            }
        }
    }

    /// Insert a batch of elements.
    ///
    /// In known-`N` mode the Bernoulli sampler jumps between acceptances
    /// with geometric skips (one random draw per *sampled* element, not per
    /// stream element), so a batch at rate `s/N ≪ 1` costs almost nothing
    /// beyond the accepted heap pushes. The unknown-`N` reservoir offers
    /// per element as before.
    // alloc: the heaps are pre-sized to k + 1 and trimmed back to k after
    // every push, so pushes reuse capacity after warm-up.
    pub fn insert_batch(&mut self, items: &[T]) {
        self.seen = self.seen.saturating_add(items.len() as u64);
        let k = self.k as usize;
        match &mut self.mode {
            SampleMode::KnownN {
                sampler,
                low_heap,
                high_heap,
            } => {
                let tail = self.tail;
                // Batch screen via the chunked (autovectorizing) min/max
                // kernel: once the heap is full, a batch whose most extreme
                // element cannot displace the heap boundary would see every
                // accepted push popped straight back out. The sampler still
                // runs — acceptance draws depend only on the batch length,
                // so the RNG stream (and every later acceptance) is
                // identical to the unscreened path — but the closure skips
                // the dead heap traffic.
                let screened = match tail {
                    Tail::Low => {
                        low_heap.len() >= k
                            && match (low_heap.peek(), slice_min_max(items)) {
                                (Some(top), Some((lo, _))) => lo >= *top,
                                _ => false,
                            }
                    }
                    Tail::High => {
                        high_heap.len() >= k
                            && match (high_heap.peek(), slice_min_max(items)) {
                                (Some(top), Some((_, hi))) => hi <= top.0,
                                _ => false,
                            }
                    }
                };
                sampler.accept_many(items.len() as u64, &mut self.rng, &mut |i| {
                    if screened {
                        return;
                    }
                    // accept_many only yields indices below the count it
                    // was given, but stay total anyway: an out-of-range
                    // skip would silently drop a sample, not panic.
                    let Some(item) = items.get(i as usize).cloned() else {
                        return;
                    };
                    match tail {
                        Tail::Low => {
                            low_heap.push(item);
                            if low_heap.len() > k {
                                low_heap.pop();
                            }
                        }
                        Tail::High => {
                            high_heap.push(Reverse(item));
                            if high_heap.len() > k {
                                high_heap.pop();
                            }
                        }
                    }
                });
            }
            SampleMode::UnknownN { reservoir } => {
                for item in items {
                    reservoir.offer(item.clone(), &mut self.rng);
                }
            }
        }
    }

    /// Insert every element of an iterator (batched internally). The
    /// staging buffer is a struct field reused across calls, so repeated
    /// `extend`s allocate nothing once it has warmed up to chunk capacity.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        const CHUNK: usize = 1024;
        let mut iter = iter.into_iter();
        // Staging leaves the struct for the duration so insert_batch can
        // borrow `&mut self` while the batch is alive.
        let mut buf = std::mem::take(&mut self.stage);
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(CHUNK));
            if buf.is_empty() {
                break;
            }
            self.insert_batch(&buf);
            if buf.len() < CHUNK {
                break;
            }
        }
        buf.clear();
        self.stage = buf;
    }

    /// The current estimate: the k-th most extreme element of the sample
    /// (expected rank `φ·N`). `None` until the sample has at least one
    /// retained element.
    pub fn query(&self) -> Option<T> {
        match &self.mode {
            SampleMode::KnownN {
                low_heap,
                high_heap,
                ..
            } => match self.tail {
                // Max of the k smallest = k-th smallest of the sample.
                Tail::Low => low_heap.peek().cloned(),
                Tail::High => high_heap.peek().map(|r| r.0.clone()),
            },
            SampleMode::UnknownN { reservoir } => {
                // k-th extreme of the reservoir, scaled: the reservoir is a
                // uniform sample of whatever has arrived, so its
                // φ-quantile estimates the stream's.
                reservoir.quantile(match self.tail {
                    Tail::Low => self.phi,
                    Tail::High => self.phi,
                })
            }
        }
    }

    /// Elements seen so far.
    pub fn n(&self) -> u64 {
        self.seen
    }

    /// The Stein sample size `s`.
    pub fn sample_size(&self) -> u64 {
        self.s
    }

    /// The retained-heap size `k = ⌈φ·s⌉` — the estimator's memory bound
    /// in known-`N` mode.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The guarantee `(φ, ε, δ)`.
    pub fn guarantee(&self) -> (f64, f64, f64) {
        (self.phi, self.epsilon, self.delta)
    }

    /// Current memory footprint in elements.
    pub fn memory_elements(&self) -> usize {
        match &self.mode {
            SampleMode::KnownN {
                low_heap,
                high_heap,
                ..
            } => low_heap.len() + high_heap.len(),
            SampleMode::UnknownN { reservoir } => reservoir.sample().len(),
        }
    }
}

fn effective_phi(phi: f64, tail: Tail) -> f64 {
    assert!(phi > 0.0 && phi < 1.0, "phi must lie in (0, 1)");
    match tail {
        Tail::Low => phi,
        Tail::High => 1.0 - phi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_tail_estimate_lands_near_phi_n() {
        let n = 300_000u64;
        let mut est = ExtremeValue::<u64>::known_n(0.01, 0.005, 1e-3, n, Tail::Low, 1);
        est.extend((0..n).map(|i| (i * 2654435761) % n));
        let q = est.query().unwrap() as f64;
        // Value v has rank ~v in this permutation of 0..n.
        assert!(
            (q - 0.01 * n as f64).abs() <= 0.005 * n as f64 + 50.0,
            "estimate {q} vs expected {}",
            0.01 * n as f64
        );
    }

    #[test]
    fn high_tail_estimate_lands_near_phi_n() {
        let n = 300_000u64;
        let mut est = ExtremeValue::<u64>::known_n(0.99, 0.005, 1e-3, n, Tail::High, 2);
        est.extend((0..n).map(|i| (i * 48271) % n));
        let q = est.query().unwrap() as f64;
        assert!(
            (q - 0.99 * n as f64).abs() <= 0.005 * n as f64 + 50.0,
            "estimate {q} vs expected {}",
            0.99 * n as f64
        );
    }

    #[test]
    fn memory_is_bounded_by_k() {
        let n = 500_000u64;
        let mut est = ExtremeValue::<u64>::known_n(0.01, 0.002, 1e-4, n, Tail::Low, 3);
        est.extend(0..n);
        assert!(est.memory_elements() as u64 <= est.k());
        // And k is small: the whole point of section 7.
        assert!(est.k() < 1_000, "k = {}", est.k());
    }

    #[test]
    fn unknown_n_reservoir_variant_tracks_prefixes() {
        let mut est = ExtremeValue::<u64>::unknown_n(0.05, 0.02, 1e-3, Tail::Low, 4);
        for i in 0..100_000u64 {
            est.insert((i * 69621) % 100_000);
        }
        let q = est.query().unwrap() as f64;
        assert!(
            (q - 5_000.0).abs() <= 0.02 * 100_000.0 + 100.0,
            "estimate {q}"
        );
    }

    #[test]
    fn batch_screen_preserves_the_exact_heap() {
        // s ≥ n makes the Bernoulli sampler accept every element
        // deterministically, so the estimator must track the *exact* k-th
        // order statistic; ascending batches keep the low heap full of the
        // smallest prefix (every later batch is screened), descending
        // batches do the same for the high heap, and a hashed permutation
        // mixes screened and unscreened batches. A wrong screen shows up
        // as a wrong order statistic.
        let n = 4096u64;
        let data: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let feeds: [Box<dyn Fn() -> Vec<u64>>; 3] = [
            Box::new(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v
            }),
            Box::new(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v.reverse();
                v
            }),
            Box::new(|| data.clone()),
        ];
        for feed in &feeds {
            let mut lo = ExtremeValue::<u64>::known_n(0.05, 0.01, 1e-6, n, Tail::Low, 9);
            let mut hi = ExtremeValue::<u64>::known_n(0.95, 0.01, 1e-6, n, Tail::High, 9);
            assert!(
                lo.sample_size() >= n && hi.sample_size() >= n,
                "test needs deterministic acceptance (s = {})",
                lo.sample_size()
            );
            for chunk in feed().chunks(256) {
                lo.insert_batch(chunk);
                hi.insert_batch(chunk);
            }
            let k_lo = lo.k() as usize;
            let k_hi = hi.k() as usize;
            assert_eq!(lo.query(), Some(sorted[k_lo - 1]));
            assert_eq!(hi.query(), Some(sorted[sorted.len() - k_hi]));
        }
    }

    #[test]
    fn empty_estimator_returns_none() {
        let est = ExtremeValue::<u64>::known_n(0.01, 0.005, 1e-3, 100, Tail::Low, 5);
        assert!(est.query().is_none());
        assert_eq!(est.memory_elements(), 0);
    }

    #[test]
    fn k_scales_with_phi() {
        let a = ExtremeValue::<u64>::known_n(0.001, 0.0005, 1e-4, 1 << 30, Tail::Low, 6);
        let b = ExtremeValue::<u64>::known_n(0.01, 0.005, 1e-4, 1 << 30, Tail::Low, 6);
        // k = ceil(phi * s); both are small relative to the general
        // algorithm but k grows with phi for fixed relative accuracy.
        assert!(a.k() >= 1 && b.k() >= 1);
        assert!(a.sample_size() > b.sample_size());
    }
}
