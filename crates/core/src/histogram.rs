//! Equi-depth histograms and the any-quantile pre-computation trick (§4.7,
//! §1.1–1.2).
//!
//! Equi-depth histograms "are simply i/p-quantiles, for i ∈ {1, …, p−1},
//! computed over column values of database tables" — the workhorse of query
//! optimizers ([PIHS96], [SALP79]). Because the underlying sketch handles
//! unknown `N`, the histogram stays accurate for a *dynamically growing*
//! table (§1.2): re-query the boundaries whenever they are needed.
//!
//! The pre-computation trick: maintain the sketch at guarantee ε/2 and
//! answer *any* φ by snapping to the nearest of the `⌈1/ε⌉` grid quantiles
//! — memory independent of how many quantiles are eventually asked for.

use crate::unknown_n::UnknownN;
use mrl_analysis::optimizer::OptimizerOptions;

/// A `p`-bucket equi-depth histogram over a stream of unknown length.
///
/// ```
/// use mrl_core::{EquiDepthHistogram, OptimizerOptions};
///
/// let mut hist =
///     EquiDepthHistogram::<u64>::with_options(10, 0.005, 1e-4, OptimizerOptions::fast())
///         .with_seed(2);
/// hist.extend(0..100_000u64);
/// let bounds = hist.boundaries().unwrap();
/// assert_eq!(bounds.len(), 9); // p-1 splitters
/// assert!((bounds[4] as f64 - 50_000.0).abs() <= 1_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram<T> {
    sketch: UnknownN<T>,
    buckets: usize,
}

impl<T: Ord + Clone + 'static> EquiDepthHistogram<T> {
    /// A histogram with `buckets ≥ 2` buckets whose boundary ranks are each
    /// within `ε·N` of exact with probability `1 − δ` (jointly over all
    /// boundaries, via the union bound of §4.7).
    ///
    /// # Panics
    /// Panics if `buckets < 2` or the guarantee parameters are out of
    /// range.
    pub fn new(buckets: usize, epsilon: f64, delta: f64) -> Self {
        Self::with_options(buckets, epsilon, delta, OptimizerOptions::default())
    }

    /// As [`EquiDepthHistogram::new`] with an explicit optimizer search
    /// space.
    pub fn with_options(buckets: usize, epsilon: f64, delta: f64, opts: OptimizerOptions) -> Self {
        assert!(buckets >= 2, "a histogram needs at least two buckets");
        // p-1 simultaneous quantiles: delta -> delta/(p-1).
        let p = (buckets - 1) as f64;
        let config = mrl_analysis::optimizer::optimize_unknown_n_with(epsilon, delta / p, opts);
        Self {
            sketch: UnknownN::from_config(config, 0),
            buckets,
        }
    }

    /// Re-seed (fresh, empty histogram).
    ///
    /// # Panics
    /// Panics if data has already been inserted.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        Self {
            sketch: self.sketch.with_seed(seed),
            buckets: self.buckets,
        }
    }

    /// Insert one element.
    pub fn insert(&mut self, item: T) {
        self.sketch.insert(item);
    }

    /// Insert a batch of elements through the sketch's batched fast path.
    pub fn insert_batch(&mut self, items: &[T]) {
        self.sketch.insert_batch(items);
    }

    /// Insert every element of an iterator (batched internally).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.sketch.extend(iter);
    }

    /// The `p−1` bucket boundaries (the i/p-quantiles) of everything
    /// inserted so far. `None` before the first insert. May be called at
    /// any time — the histogram of a growing table (§1.2).
    pub fn boundaries(&self) -> Option<Vec<T>> {
        let phis: Vec<f64> = (1..self.buckets)
            .map(|i| i as f64 / self.buckets as f64)
            .collect();
        self.sketch.query_many(&phis)
    }

    /// Number of buckets `p`.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.sketch.n()
    }

    /// Memory bound in elements.
    pub fn memory_bound_elements(&self) -> usize {
        self.sketch.memory_bound_elements()
    }

    /// Access the underlying sketch (e.g. for ad-hoc quantile queries).
    pub fn sketch(&self) -> &UnknownN<T> {
        &self.sketch
    }
}

/// Any-quantile answering via the ε/2 grid (§4.7's pre-computation trick).
///
/// Maintains `⌈1/ε⌉` pre-computed quantiles at guarantee ε/2; any requested
/// φ snaps to the nearest grid point, giving an ε-approximate answer for an
/// **arbitrary, unbounded number of queries** — memory independent of the
/// query count.
#[derive(Clone, Debug)]
pub struct AnyQuantile<T> {
    sketch: UnknownN<T>,
    grid: usize,
}

impl<T: Ord + Clone + 'static> AnyQuantile<T> {
    /// Build for guarantee (ε, δ).
    pub fn new(epsilon: f64, delta: f64) -> Self {
        Self::with_options(epsilon, delta, OptimizerOptions::default())
    }

    /// As [`AnyQuantile::new`] with an explicit optimizer search space.
    pub fn with_options(epsilon: f64, delta: f64, opts: OptimizerOptions) -> Self {
        let grid = (1.0 / epsilon).ceil() as usize;
        let config = mrl_analysis::optimizer::optimize_unknown_n_with(
            epsilon / 2.0,
            delta / grid as f64,
            opts,
        );
        Self {
            sketch: UnknownN::from_config(config, 0),
            grid,
        }
    }

    /// Re-seed (fresh, empty).
    ///
    /// # Panics
    /// Panics if data has already been inserted.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        Self {
            sketch: self.sketch.with_seed(seed),
            grid: self.grid,
        }
    }

    /// Insert one element.
    pub fn insert(&mut self, item: T) {
        self.sketch.insert(item);
    }

    /// Insert a batch of elements through the sketch's batched fast path.
    pub fn insert_batch(&mut self, items: &[T]) {
        self.sketch.insert_batch(items);
    }

    /// Insert every element of an iterator (batched internally).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.sketch.extend(iter);
    }

    /// Any φ-quantile: snap φ to the nearest grid point `(2i−1)/(2·grid)`
    /// and return that pre-computable quantile. ε-approximate overall.
    pub fn query(&self, phi: f64) -> Option<T> {
        assert!((0.0..=1.0).contains(&phi), "phi must lie in [0, 1]");
        // Grid points phi_i = (2i - 1) / (2 grid), i = 1..=grid.
        let i = (phi * self.grid as f64 + 0.5)
            .round()
            .clamp(1.0, self.grid as f64);
        let snapped = (2.0 * i - 1.0) / (2.0 * self.grid as f64);
        self.sketch.query(snapped)
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.sketch.n()
    }

    /// Memory bound in elements.
    pub fn memory_bound_elements(&self) -> usize {
        self.sketch.memory_bound_elements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_analysis::optimizer::OptimizerOptions;

    #[test]
    fn boundaries_split_uniform_data_evenly() {
        let mut h =
            EquiDepthHistogram::<u64>::with_options(10, 0.01, 1e-3, OptimizerOptions::fast())
                .with_seed(1);
        let n = 200_000u64;
        h.extend((0..n).map(|i| (i * 2654435761) % n));
        let bounds = h.boundaries().unwrap();
        assert_eq!(bounds.len(), 9);
        for (i, b) in bounds.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0 * n as f64;
            assert!(
                (*b as f64 - expect).abs() <= 0.01 * n as f64 + 1.0,
                "boundary {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn boundaries_are_monotone() {
        let mut h =
            EquiDepthHistogram::<u64>::with_options(7, 0.02, 1e-2, OptimizerOptions::fast())
                .with_seed(3);
        h.extend((0..50_000u64).map(|i| (i * 31) % 49_999));
        let bounds = h.boundaries().unwrap();
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_of_growing_table_stays_accurate() {
        let mut h =
            EquiDepthHistogram::<u64>::with_options(4, 0.05, 1e-2, OptimizerOptions::fast())
                .with_seed(5);
        for chunk in 0..5u64 {
            let base = chunk * 20_000;
            h.extend((base..base + 20_000).map(|i| (i * 48271) % 1_000_000));
            if let Some(bounds) = h.boundaries() {
                assert_eq!(bounds.len(), 3);
                // Uniform over [0, 1e6): median boundary near 500k.
                assert!(
                    (bounds[1] as f64 - 500_000.0).abs() <= 0.05 * 1_000_000.0 + 20_000.0,
                    "chunk {chunk}: median boundary {}",
                    bounds[1]
                );
            }
        }
    }

    #[test]
    fn any_quantile_answers_arbitrary_phis() {
        let mut a =
            AnyQuantile::<u64>::with_options(0.05, 1e-2, OptimizerOptions::fast()).with_seed(7);
        let n = 100_000u64;
        a.extend((0..n).map(|i| (i * 69621) % n));
        for phi in [0.137, 0.5, 0.734, 0.99] {
            let q = a.query(phi).unwrap() as f64;
            assert!(
                (q - phi * n as f64).abs() <= 0.05 * n as f64 + 1.0,
                "phi={phi}: {q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two buckets")]
    fn one_bucket_is_rejected() {
        let _ = EquiDepthHistogram::<u64>::with_options(1, 0.1, 0.01, OptimizerOptions::fast());
    }
}
