//! The §5 dynamic buffer-allocation variant of the unknown-`N` sketch.
//!
//! Allocates buffers lazily according to a validated allocation schedule,
//! so memory usage grows with the stream instead of being claimed up
//! front ("If the input consists of a singleton element, our main memory
//! usage is clearly outrageous"). The sampling-onset height `h` is chosen
//! by the schedule search so that onset lands only after every buffer has
//! been allocated (§5's "use Eq 3 to limit h").

use mrl_analysis::optimizer::OptimizerOptions;
use mrl_analysis::schedule::{find_schedule, AllocationPlan, MemoryLimit};
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, Mrl99Schedule};

/// An unknown-`N` quantile sketch whose memory grows with the stream,
/// honouring user-specified ceilings at every prefix (§5, Figure 5).
#[derive(Clone, Debug)]
pub struct DynamicUnknownN<T> {
    engine: Engine<T, AdaptiveLowestLevel, Mrl99Schedule>,
    plan: AllocationPlan,
    epsilon: f64,
    delta: f64,
}

impl<T: Ord + Clone + 'static> DynamicUnknownN<T> {
    /// Search for a valid allocation schedule meeting `limits` and build
    /// the sketch. Returns `None` when no valid schedule exists (the
    /// paper: "There may or may not be a valid buffer schedule that meets
    /// these upper limits").
    pub fn new(
        epsilon: f64,
        delta: f64,
        limits: &[MemoryLimit],
        opts: OptimizerOptions,
        seed: u64,
    ) -> Option<Self> {
        let plan = find_schedule(epsilon, delta, limits, opts)?;
        Some(Self::from_plan(plan, epsilon, delta, seed))
    }

    /// Build from a validated plan.
    pub fn from_plan(plan: AllocationPlan, epsilon: f64, delta: f64, seed: u64) -> Self {
        let engine = Engine::with_allocation(
            EngineConfig::new(plan.b, plan.k),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(plan.h),
            plan.thresholds.clone(),
            seed,
        );
        Self {
            engine,
            plan,
            epsilon,
            delta,
        }
    }

    /// Insert one element.
    pub fn insert(&mut self, item: T) {
        self.engine.insert(item);
    }

    /// Insert a batch of elements through the engine's batched fast path.
    pub fn insert_batch(&mut self, items: &[T]) {
        self.engine.insert_batch(items);
    }

    /// Insert every element of an iterator (batched internally).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.engine.extend(iter);
    }

    /// Estimate the φ-quantile of everything inserted so far.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.engine.query(phi)
    }

    /// Estimate several quantiles in one merge pass, in caller order.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        self.engine.query_many(phis)
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.engine.n()
    }

    /// The validated allocation plan.
    pub fn plan(&self) -> &AllocationPlan {
        &self.plan
    }

    /// The guarantee `(ε, δ)`.
    pub fn guarantee(&self) -> (f64, f64) {
        (self.epsilon, self.delta)
    }

    /// **Current** memory footprint in elements — the §5 payoff: grows
    /// with the stream instead of starting at `b·k`.
    pub fn memory_elements(&self) -> usize {
        self.engine.memory_elements()
    }

    /// The eventual worst-case footprint `b·k`.
    pub fn memory_bound_elements(&self) -> usize {
        self.plan.memory()
    }

    /// True once the non-uniform sampler has engaged.
    pub fn sampling_started(&self) -> bool {
        self.engine.sampling_started()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grows_lazily_and_respects_ceilings() {
        let opts = OptimizerOptions::fast();
        let base = mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, opts);
        let limits = [
            MemoryLimit {
                n: 2_000,
                max_memory: (base.memory * 3) / 4,
            },
            MemoryLimit {
                n: u64::MAX / 2,
                max_memory: base.memory * 2,
            },
        ];
        let Some(mut s) = DynamicUnknownN::<u64>::new(0.05, 0.01, &limits, opts, 3) else {
            // Documented outcome: limits may be infeasible. The fig5
            // experiment covers the feasible case; do not mask a search
            // regression here though.
            panic!("generous staged limits should admit a schedule");
        };
        // Memory at every prefix must respect the applicable ceiling.
        let mut peak_early = 0usize;
        for i in 0..300_000u64 {
            s.insert((i * 2654435761) % 300_000);
            if i < 2_000 {
                peak_early = peak_early.max(s.memory_elements());
            }
        }
        assert!(
            peak_early <= (base.memory * 3) / 4,
            "early memory {peak_early} exceeded ceiling {}",
            (base.memory * 3) / 4
        );
        assert!(s.memory_elements() <= base.memory * 2);
        // And the answers are still within the guarantee.
        let q = s.query(0.5).unwrap() as f64;
        assert!(
            (q - 150_000.0).abs() <= 0.05 * 300_000.0 + 1.0,
            "median {q}"
        );
        assert!(s.sampling_started());
    }

    #[test]
    fn tiny_stream_uses_tiny_memory() {
        let opts = OptimizerOptions::fast();
        let base = mrl_analysis::optimizer::optimize_unknown_n_with(0.05, 0.01, opts);
        let limits = [MemoryLimit {
            n: u64::MAX / 2,
            max_memory: base.memory * 2,
        }];
        let Some(mut s) = DynamicUnknownN::<u64>::new(0.05, 0.01, &limits, opts, 4) else {
            panic!("unbounded ceiling must admit a schedule");
        };
        for i in 0..10u64 {
            s.insert(i);
        }
        // One or two buffers at most for a 10-element stream.
        assert!(
            s.memory_elements() <= 2 * s.plan().k,
            "memory {} for a 10-element stream",
            s.memory_elements()
        );
        assert_eq!(s.query(0.5), Some(4)); // exact: ceil(0.5*10) = 5th of 0..9
    }
}
