//! The MRL99 algorithms: single-pass approximate quantiles of large
//! datasets, **without advance knowledge of the stream length**.
//!
//! This crate is the user-facing surface of the workspace:
//!
//! * [`UnknownN`] — the paper's headline algorithm (§3–§4): non-uniform
//!   random sampling feeding a deterministic collapse tree. Guarantees an
//!   ε-approximate φ-quantile with probability ≥ 1−δ at *any* prefix of the
//!   stream, in `O(ε⁻¹ log²ε⁻¹ + ε⁻¹ log² log δ⁻¹)` memory, independent of
//!   the stream length.
//! * [`KnownN`] — the MRL98 baseline for streams of known length
//!   (deterministic for short streams, uniformly sampled for long ones).
//! * [`ExtremeValue`] — §7's estimator for extreme quantiles (φ close to 0
//!   or 1): keep only the `k = ⌈φ·s⌉` most extreme elements of a random
//!   sample sized by Stein's lemma. Far less memory than the general
//!   algorithm when φ is small.
//! * [`EquiDepthHistogram`] — §4.7's pre-computation trick: maintain
//!   `⌈1/ε⌉` equally spaced quantiles at guarantee ε/2 and answer *any*
//!   quantile, or build a `p`-bucket equi-depth histogram of a dynamically
//!   growing table (§1.2).
//!
//! Parameters (`b`, `k`, `h`, `α`) are chosen automatically by the
//! certified optimizer in `mrl-analysis`; power users can supply their own.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
mod dynamic;
mod ext;
mod extreme;
mod histogram;
mod known_n;
mod persist;
mod unknown_n;

pub use audit::EpsilonAudit;
pub use dynamic::DynamicUnknownN;
pub use ext::QuantileIteratorExt;
pub use extreme::{ExtremeValue, Tail};
pub use histogram::{AnyQuantile, EquiDepthHistogram};
pub use known_n::KnownN;
pub use persist::SketchSnapshot;
pub use unknown_n::UnknownN;

pub use mrl_analysis::optimizer::{KnownNPlan, OptimizerOptions, UnknownNConfig};
pub use mrl_framework::OrderedF64;
