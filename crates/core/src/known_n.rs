//! The known-`N` baseline (MRL98): quantiles of a stream whose length is
//! declared up front.
//!
//! Used by the paper as the comparison point for Table 1 and Figure 4: the
//! deterministic algorithm for short streams, or a uniform block-sample
//! feeding the deterministic tree for long ones. Knowing `N` lets the
//! sampling rate be fixed in advance — the whole difficulty the unknown-`N`
//! algorithm removes.

use mrl_analysis::optimizer::{optimize_known_n, KnownNMode, KnownNPlan};
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, FixedRate};

/// Single-pass ε-approximate quantiles of a stream of **declared** length.
///
/// ```
/// use mrl_core::KnownN;
///
/// let mut sketch = KnownN::<u64>::new(0.05, 0.01, 10_000).with_seed(3);
/// sketch.extend(0..10_000u64);
/// let med = sketch.query(0.5).unwrap();
/// assert!((med as f64 - 5_000.0).abs() <= 500.0);
/// ```
#[derive(Clone, Debug)]
pub struct KnownN<T> {
    engine: Engine<T, AdaptiveLowestLevel, FixedRate>,
    plan: KnownNPlan,
    epsilon: f64,
    delta: f64,
    expected_n: u64,
    seed: u64,
    /// Staging buffer for [`KnownN::extend`], reused across calls.
    stage: Vec<T>,
}

impl<T: Ord + Clone + 'static> KnownN<T> {
    /// Create a sketch for exactly `n` elements with guarantee
    /// (ε, δ). Chooses the cheaper of the deterministic and sampled MRL98
    /// plans.
    ///
    /// # Panics
    /// Panics if `ε ∉ (0, 1)`, `δ ∉ (0, 1)` or `n == 0`.
    pub fn new(epsilon: f64, delta: f64, n: u64) -> Self {
        let plan = optimize_known_n(epsilon, delta, n);
        Self::from_plan(plan, epsilon, delta, n, 0)
    }

    /// Build from an explicit plan.
    pub fn from_plan(plan: KnownNPlan, epsilon: f64, delta: f64, n: u64, seed: u64) -> Self {
        assert!(n > 0, "stream length must be positive");
        let rate = match &plan.mode {
            KnownNMode::Deterministic => 1,
            KnownNMode::Sampled { sample_size, .. } => (n / (*sample_size).max(1)).max(1),
        };
        let engine = Engine::new(
            EngineConfig::new(plan.b, plan.k),
            AdaptiveLowestLevel,
            FixedRate::new(rate),
            seed,
        );
        Self {
            engine,
            plan,
            epsilon,
            delta,
            expected_n: n,
            seed,
            stage: Vec::new(),
        }
    }

    /// Re-seed the sampler (returns a fresh, empty sketch).
    ///
    /// # Panics
    /// Panics if data has already been inserted.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        assert_eq!(self.engine.n(), 0, "with_seed on a non-empty sketch");
        Self::from_plan(self.plan, self.epsilon, self.delta, self.expected_n, seed)
    }

    /// Insert one element.
    ///
    /// # Panics
    /// Panics if more than the declared `n` elements are inserted — the
    /// known-`N` guarantee is void beyond the declared length (use
    /// [`crate::UnknownN`] when the length is uncertain).
    pub fn insert(&mut self, item: T) {
        assert!(
            self.engine.n() < self.expected_n,
            "inserted more than the declared {} elements",
            self.expected_n
        );
        self.engine.insert(item);
    }

    /// Insert a batch of elements through the engine's batched fast path.
    ///
    /// # Panics
    /// Panics if the batch would exceed the declared `n` elements.
    pub fn insert_batch(&mut self, items: &[T]) {
        assert!(
            // Saturating: a near-u64::MAX declared n must trip the assert,
            // not wrap the sum past it.
            self.engine.n().saturating_add(items.len() as u64) <= self.expected_n,
            "inserted more than the declared {} elements",
            self.expected_n
        );
        self.engine.insert_batch(items);
    }

    /// Insert every element of an iterator (batched internally). The
    /// staging buffer is a struct field reused across calls, so repeated
    /// `extend`s allocate nothing once it has warmed up to chunk capacity.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        const CHUNK: usize = 1024;
        let mut iter = iter.into_iter();
        // Staging leaves the struct for the duration so insert_batch can
        // borrow `&mut self` while the batch is alive.
        let mut buf = std::mem::take(&mut self.stage);
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(CHUNK));
            if buf.is_empty() {
                break;
            }
            self.insert_batch(&buf);
            if buf.len() < CHUNK {
                break;
            }
        }
        buf.clear();
        self.stage = buf;
    }

    /// Estimate the φ-quantile of everything inserted so far. The (ε, δ)
    /// guarantee applies once all `n` declared elements have arrived.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.engine.query(phi)
    }

    /// Estimate several quantiles in one merge pass.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        self.engine.query_many(phis)
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.engine.n()
    }

    /// The declared stream length.
    pub fn expected_n(&self) -> u64 {
        self.expected_n
    }

    /// The plan in use (deterministic or sampled, with `b`, `k`).
    pub fn plan(&self) -> &KnownNPlan {
        &self.plan
    }

    /// The guarantee parameters.
    pub fn guarantee(&self) -> (f64, f64) {
        (self.epsilon, self.delta)
    }

    /// The seed the sampler was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Memory footprint in elements.
    pub fn memory_elements(&self) -> usize {
        self.plan.memory
    }

    /// Approximate selectivities of `x < v` / `x <= v` (§1.1):
    /// `(frac_below, frac_at_most)`. `None` before the first insert.
    pub fn rank_of(&self, value: &T) -> Option<(f64, f64)> {
        self.engine.rank_of(value)
    }

    /// The stepwise CDF of the sketch's weighted contents.
    pub fn cdf(&self) -> Vec<mrl_framework::CdfPoint<T>> {
        self.engine.cdf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_plan_for_small_n_is_exact_or_close() {
        let n = 5_000u64;
        let mut s = KnownN::<u64>::new(0.01, 0.001, n);
        s.extend(0..n);
        let med = s.query(0.5).unwrap() as f64;
        assert!((med - 2_500.0).abs() <= 0.01 * n as f64);
    }

    #[test]
    fn sampled_plan_engages_for_large_n() {
        let n = 50_000_000u64;
        let s = KnownN::<u64>::new(0.05, 0.01, n);
        match s.plan().mode {
            KnownNMode::Sampled { sample_size, .. } => assert!(sample_size < n),
            KnownNMode::Deterministic => {
                panic!("expected the sampled plan for n = 5·10^7 at epsilon 0.05")
            }
        }
        // Memory far below n.
        assert!(s.memory_elements() < 100_000);
    }

    #[test]
    fn sampled_plan_is_accurate() {
        let n = 2_000_000u64;
        let mut s = KnownN::<u64>::new(0.05, 0.01, n).with_seed(5);
        s.extend((0..n).map(|i| (i * 2654435761) % n));
        let q = s.query(0.25).unwrap() as f64;
        assert!(
            (q - 0.25 * n as f64).abs() <= 0.05 * n as f64,
            "p25 {q} vs {}",
            0.25 * n as f64
        );
    }

    #[test]
    #[should_panic(expected = "more than the declared")]
    fn over_inserting_panics() {
        let mut s = KnownN::<u64>::new(0.1, 0.01, 10);
        s.extend(0..11u64);
    }

    #[test]
    fn memory_is_monotone_in_n_until_sampling() {
        let m1 = KnownN::<u64>::new(0.01, 0.001, 10_000).memory_elements();
        let m2 = KnownN::<u64>::new(0.01, 0.001, 10_000_000).memory_elements();
        assert!(m2 >= m1);
    }
}
