//! Persistence: checkpoint an [`UnknownN`] sketch and restore it later.
//!
//! A quantile sketch in a database outlives processes — an equi-depth
//! histogram maintained alongside a growing table is checkpointed with the
//! table. [`SketchSnapshot`] serialises the sketch's full logical state
//! (configuration plus engine snapshot); restore resumes the stream with
//! the same (ε, δ) guarantee. The sampler is re-seeded on restore, so a
//! resumed run is statistically equivalent but not bit-identical to an
//! uninterrupted one (the analysis only needs per-block uniformity and
//! independence, which re-seeding preserves).

use serde::{Deserialize, Serialize};

use mrl_analysis::optimizer::UnknownNConfig;
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineSnapshot, Mrl99Schedule};

use crate::unknown_n::UnknownN;

/// Serializable checkpoint of an [`UnknownN`] sketch.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SketchSnapshot<T> {
    /// The certified configuration.
    pub config: UnknownNConfig,
    /// The engine state.
    pub engine: EngineSnapshot<T, Mrl99Schedule>,
}

impl<T: Ord + Clone + 'static> UnknownN<T> {
    /// Capture the sketch's state for checkpointing.
    pub fn to_snapshot(&self) -> SketchSnapshot<T> {
        SketchSnapshot {
            config: self.config().clone(),
            engine: self.engine_ref().snapshot(),
        }
    }

    /// Resume from a checkpoint with a fresh sampler seed.
    ///
    /// # Panics
    /// Panics if the snapshot is internally inconsistent.
    pub fn from_snapshot(snapshot: SketchSnapshot<T>, seed: u64) -> Self {
        let engine: Engine<T, AdaptiveLowestLevel, Mrl99Schedule> =
            Engine::restore(snapshot.engine, AdaptiveLowestLevel, seed);
        UnknownN::from_parts(engine, snapshot.config, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrl_analysis::optimizer::OptimizerOptions;

    fn sketch_with_data(n: u64) -> UnknownN<u64> {
        let mut s =
            UnknownN::<u64>::with_options(0.05, 0.01, OptimizerOptions::fast()).with_seed(11);
        s.extend((0..n).map(|i| (i * 2654435761) % 1_000_003));
        s
    }

    #[test]
    fn snapshot_roundtrip_is_query_identical() {
        let s = sketch_with_data(30_000);
        let snap = s.to_snapshot();
        let restored = UnknownN::from_snapshot(snap, 99);
        assert_eq!(
            s.query_many(&[0.1, 0.5, 0.9]),
            restored.query_many(&[0.1, 0.5, 0.9])
        );
        assert_eq!(s.n(), restored.n());
    }

    #[test]
    fn snapshot_survives_json() {
        let s = sketch_with_data(5_000);
        let snap = s.to_snapshot();
        let json = serde_json::to_string(&snap).expect("serialises");
        let back: SketchSnapshot<u64> = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(snap, back);
        let restored = UnknownN::from_snapshot(back, 1);
        assert_eq!(restored.query(0.5), s.query(0.5));
    }

    #[test]
    fn restored_sketch_keeps_the_guarantee_on_continuation() {
        let mut original = sketch_with_data(40_000);
        let restored_snap = original.to_snapshot();
        let mut resumed = UnknownN::from_snapshot(restored_snap, 12345);
        for i in 40_000u64..150_000 {
            let v = (i * 2654435761) % 1_000_003;
            original.insert(v);
            resumed.insert(v);
        }
        let n = 150_000f64;
        for sketch in [&original, &resumed] {
            let med = sketch.query(0.5).unwrap() as f64;
            assert!(
                (med - 500_000.0).abs() <= 0.05 * 1_000_003.0 + n,
                "median {med} out of range"
            );
        }
    }

    #[test]
    fn config_travels_with_the_snapshot() {
        let s = sketch_with_data(100);
        let snap = s.to_snapshot();
        let restored = UnknownN::from_snapshot(snap, 5);
        assert_eq!(restored.config(), s.config());
        assert_eq!(restored.seed(), 5);
    }
}
