//! Ergonomic iterator integration: sketch any `Iterator` directly.

use mrl_analysis::optimizer::OptimizerOptions;

use crate::unknown_n::UnknownN;

/// Extension methods for iterators of orderable items.
///
/// ```
/// use mrl_core::{OptimizerOptions, QuantileIteratorExt};
///
/// let p90 = (0..100_000u64)
///     .sketch_with_options(0.02, 0.01, OptimizerOptions::fast(), 7)
///     .query(0.9)
///     .unwrap();
/// assert!((p90 as f64 - 90_000.0).abs() <= 0.02 * 100_000.0);
/// ```
pub trait QuantileIteratorExt: Iterator + Sized
where
    Self::Item: Ord + Clone + 'static,
{
    /// Consume the iterator into an [`UnknownN`] sketch with guarantee
    /// `(ε, δ)` (full optimizer search; see
    /// [`QuantileIteratorExt::sketch_with_options`] for debug builds).
    fn sketch(self, epsilon: f64, delta: f64) -> UnknownN<Self::Item> {
        self.sketch_with_options(epsilon, delta, OptimizerOptions::default(), 0)
    }

    /// As [`QuantileIteratorExt::sketch`] with an explicit search space
    /// and seed.
    fn sketch_with_options(
        self,
        epsilon: f64,
        delta: f64,
        opts: OptimizerOptions,
        seed: u64,
    ) -> UnknownN<Self::Item> {
        let mut s = UnknownN::with_options(epsilon, delta, opts).with_seed(seed);
        s.extend(self);
        s
    }

    /// One-shot quantiles of the iterator: `None` when it is empty.
    fn approx_quantiles(self, epsilon: f64, delta: f64, phis: &[f64]) -> Option<Vec<Self::Item>> {
        self.sketch(epsilon, delta).query_many(phis)
    }
}

impl<I> QuantileIteratorExt for I
where
    I: Iterator,
    I::Item: Ord + Clone + 'static,
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterator_sketching_is_accurate() {
        let sketch = (0..200_000u64)
            .map(|i| (i * 2654435761) % 200_000)
            .sketch_with_options(0.02, 0.01, OptimizerOptions::fast(), 3);
        let med = sketch.query(0.5).unwrap() as f64;
        assert!((med - 100_000.0).abs() <= 0.02 * 200_000.0);
    }

    #[test]
    fn empty_iterator_yields_empty_sketch() {
        let sketch =
            std::iter::empty::<u32>().sketch_with_options(0.1, 0.01, OptimizerOptions::fast(), 1);
        assert_eq!(sketch.n(), 0);
        assert_eq!(sketch.query(0.5), None);
    }

    #[test]
    fn works_for_strings_too() {
        // The framework is generic over Ord + Clone; exercise a non-numeric
        // element type end to end.
        let words: Vec<String> = (0..5_000u32).map(|i| format!("{:05}", i % 977)).collect();
        let sketch =
            words
                .iter()
                .cloned()
                .sketch_with_options(0.05, 0.01, OptimizerOptions::fast(), 5);
        let med = sketch.query(0.5).unwrap();
        let num: u32 = med.parse().unwrap();
        assert!(
            (f64::from(num) - 977.0 / 2.0).abs() <= 0.05 * 977.0 + 2.0,
            "string median {med}"
        );
    }
}
