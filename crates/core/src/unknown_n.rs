//! The unknown-`N` quantile sketch (§3–§4).

use mrl_analysis::optimizer::{optimize_unknown_n_with, OptimizerOptions, UnknownNConfig};
use mrl_framework::{AdaptiveLowestLevel, Engine, EngineConfig, Mrl99Schedule, TreeStats};
use mrl_obs::MetricsHandle;

use crate::audit::EpsilonAudit;

/// Single-pass ε-approximate quantiles of a stream of unknown length.
///
/// The algorithm composes the paper's non-uniform sampling scheme (§3.7:
/// the sampling rate doubles each time the collapse tree grows past height
/// `h`) with the deterministic buffer/collapse framework of MRL98. At any
/// moment, [`UnknownN::query`] returns an element whose rank is within
/// `ε·N` of the exact φ-quantile with probability at least `1 − δ` — no
/// matter how many elements have arrived, and without `N` ever being known.
///
/// ```
/// use mrl_core::{OptimizerOptions, UnknownN};
///
/// // `UnknownN::new(0.01, 1e-4)` searches the full parameter grid (about a
/// // second, once per process, in release builds); the doc example uses the
/// // reduced grid so it stays fast under `cargo test`.
/// let mut sketch = UnknownN::<u64>::with_options(0.01, 1e-4, OptimizerOptions::fast())
///     .with_seed(1);
/// sketch.extend(0..500_000u64);
/// let p90 = sketch.query(0.9).unwrap();
/// assert!((p90 as f64 - 450_000.0).abs() <= 5_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct UnknownN<T> {
    engine: Engine<T, AdaptiveLowestLevel, Mrl99Schedule>,
    config: UnknownNConfig,
    seed: u64,
}

impl<T: Ord + Clone + 'static> UnknownN<T> {
    /// Create a sketch guaranteeing ε-approximate quantiles with
    /// probability `1 − δ`. Parameters `(b, k, h, α)` come from the
    /// certified optimizer (§4.5).
    ///
    /// # Panics
    /// Panics if `ε ∉ (0, 1)` or `δ ∉ (0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        Self::with_options(epsilon, delta, OptimizerOptions::default())
    }

    /// As [`UnknownN::new`] with an explicit optimizer search space (e.g.
    /// [`OptimizerOptions::fast`] for debug builds).
    pub fn with_options(epsilon: f64, delta: f64, opts: OptimizerOptions) -> Self {
        let config = optimize_unknown_n_with(epsilon, delta, opts);
        Self::from_config(config, 0)
    }

    /// Build from an explicit certified configuration.
    pub fn from_config(config: UnknownNConfig, seed: u64) -> Self {
        #[cfg_attr(not(feature = "invariant-audit"), allow(unused_mut))]
        let mut engine = Engine::new(
            EngineConfig::new(config.b, config.k),
            AdaptiveLowestLevel,
            Mrl99Schedule::new(config.h),
            seed,
        );
        // With the audit feature on, replay the schedule's certificate and
        // attach it: the engine then re-checks the certified bound on the
        // live tree at every seal/collapse. The replay is memoised per
        // (b, h), so repeated construction (proptests, shard pools) pays
        // for it once.
        #[cfg(feature = "invariant-audit")]
        {
            use mrl_analysis::simulate::{simulate_schedule_cached, SimOptions};
            if let Some(scalars) =
                simulate_schedule_cached(config.b, config.h, SimOptions::default())
            {
                engine.set_certified_schedule(mrl_framework::CertifiedSchedule {
                    g_pre: scalars.g_pre,
                    g_post: scalars.g_post,
                    alpha: config.alpha,
                    epsilon: config.epsilon,
                });
            }
        }
        Self {
            engine,
            config,
            seed,
        }
    }

    /// Re-seed the sampler (returns a fresh, empty sketch). Call before
    /// inserting data.
    ///
    /// # Panics
    /// Panics if data has already been inserted.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        assert_eq!(self.n(), 0, "with_seed on a non-empty sketch");
        Self::from_config(self.config, seed)
    }

    /// Insert one element.
    pub fn insert(&mut self, item: T) {
        self.engine.insert(item);
    }

    /// Insert a batch of elements through the engine's batched fast path
    /// (one random draw per sampled block instead of one per element).
    pub fn insert_batch(&mut self, items: &[T]) {
        self.engine.insert_batch(items);
    }

    /// Insert every element of an iterator (batched internally).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.engine.extend(iter);
    }

    /// Declare end-of-stream (optional — queries work at any prefix; this
    /// only seals the trailing partial buffer).
    pub fn finish(&mut self) {
        self.engine.finish();
    }

    /// Estimate the φ-quantile of everything inserted so far
    /// (non-destructive, repeatable — the online-aggregation property of
    /// §3.7). `None` before the first insert.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.engine.query(phi)
    }

    /// Estimate several quantiles in one merge pass; results in caller
    /// order. `None` before the first insert.
    pub fn query_many(&self, phis: &[f64]) -> Option<Vec<T>> {
        self.engine.query_many(phis)
    }

    /// Elements inserted so far.
    pub fn n(&self) -> u64 {
        self.engine.n()
    }

    /// The certified configuration in use.
    pub fn config(&self) -> &UnknownNConfig {
        &self.config
    }

    /// The seed the sampler was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current memory footprint in elements (allocated buffers × `k`).
    pub fn memory_elements(&self) -> usize {
        self.engine.memory_elements()
    }

    /// The worst-case memory footprint `b·k`.
    pub fn memory_bound_elements(&self) -> usize {
        self.config.memory
    }

    /// True once the non-uniform sampler has engaged (rate > 1).
    pub fn sampling_started(&self) -> bool {
        self.engine.sampling_started()
    }

    /// Current sampling rate (1 before onset, then 2, 4, 8, …).
    pub fn current_rate(&self) -> u64 {
        self.engine.current_rate()
    }

    /// Exact tree accounting (for diagnostics and tests).
    pub fn stats(&self) -> &TreeStats {
        self.engine.stats()
    }

    /// The deterministic component of the rank-error bound at this instant,
    /// in ranks (Lemma 4: `(W + w_max)/2`). The full guarantee adds the
    /// sampling term `(1−α)·ε·N` with probability `1 − δ`.
    pub fn tree_error_bound(&self) -> u64 {
        self.engine.tree_error_bound()
    }

    /// Attach a metrics sink: the engine publishes its seal/collapse
    /// counters through it (see [`mrl_framework::engine::metrics`]), and
    /// [`UnknownN::publish_audit`] its ε-audit gauges.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.engine.set_metrics(metrics);
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &MetricsHandle {
        self.engine.metrics()
    }

    /// Attach a flight-recorder journal: the engine emits structured
    /// seal/collapse/rate/spine lifecycle events through it (see
    /// [`mrl_obs::EventKind`]). Disabled by default.
    pub fn set_journal(&mut self, journal: mrl_obs::JournalHandle) {
        self.engine.set_journal(journal);
    }

    /// The attached journal handle (disabled by default).
    pub fn journal(&self) -> &mrl_obs::JournalHandle {
        self.engine.journal()
    }

    /// A point-in-time reading of the ε-budget consumption: the Lemma 4
    /// tree bound against the allowed `ε·N`, plus the Hoeffding `X` term
    /// governing the sampling error (see [`EpsilonAudit`]).
    pub fn audit(&self) -> EpsilonAudit {
        let stats = self.engine.stats();
        EpsilonAudit::from_parts(
            self.n(),
            self.config.epsilon,
            self.config.alpha,
            self.engine.tree_error_bound(),
            stats.hoeffding_x(),
            self.sampling_started(),
            self.current_rate(),
        )
    }

    /// Compute the current [`EpsilonAudit`] and publish it through the
    /// attached metrics handle (no-op when disabled). Returns the reading.
    pub fn publish_audit(&self) -> EpsilonAudit {
        let audit = self.audit();
        audit.publish(self.engine.metrics());
        audit
    }

    /// Approximate selectivity of the predicates `x < v` / `x <= v`
    /// (§1.1's query-optimizer use case): `(frac_below, frac_at_most)`.
    /// `None` before the first insert.
    pub fn rank_of(&self, value: &T) -> Option<(f64, f64)> {
        self.engine.rank_of(value)
    }

    /// The stepwise CDF of the sketch's weighted contents (at most
    /// `b·k + k` points) — a bounded-size synopsis of the whole
    /// distribution (§1.5).
    pub fn cdf(&self) -> Vec<mrl_framework::CdfPoint<T>> {
        self.engine.cdf()
    }

    /// Query with an explicit error bar: `(estimate, radius)` where the
    /// estimate's rank is within `radius·N` of `⌈φ·N⌉` with probability at
    /// least `1 − δ`. The radius combines the *instantaneous* deterministic
    /// tree bound (often far below `α·ε` early in the stream) with the
    /// sampling term `(1−α)·ε`; before sampling onset the radius is the
    /// exact tree bound alone.
    pub fn query_with_bound(&self, phi: f64) -> Option<(T, f64)> {
        let estimate = self.query(phi)?;
        let n = self.n() as f64;
        let tree = self.tree_error_bound() as f64 / n;
        let sampling = if self.sampling_started() {
            (1.0 - self.config.alpha) * self.config.epsilon
        } else {
            0.0
        };
        Some((estimate, (tree + sampling).min(1.0)))
    }

    /// Consume the sketch, returning its engine (for the parallel
    /// protocol's buffer shipping).
    pub fn into_engine(self) -> Engine<T, AdaptiveLowestLevel, Mrl99Schedule> {
        self.engine
    }

    /// Consume the sketch into the §6 shipment: the consumed element count
    /// plus the final buffers — full buffers collapsed down to at most one,
    /// plus at most one partial — ready for a parallel coordinator.
    pub fn into_shipment(self) -> (u64, Vec<mrl_framework::Buffer<T>>) {
        let (n, _, buffers) = self.into_shipment_with_stats();
        (n, buffers)
    }

    /// As [`UnknownN::into_shipment`], additionally returning the final
    /// exact tree accounting so a coordinator can aggregate per-worker
    /// telemetry (elements, leaves, collapses, `W`) alongside the buffers.
    pub fn into_shipment_with_stats(self) -> (u64, TreeStats, Vec<mrl_framework::Buffer<T>>) {
        let n = self.n();
        let mut engine = self.into_engine();
        engine.finish();
        engine.collapse_all_full();
        let stats = engine.stats().clone();
        (n, stats, engine.into_buffers())
    }

    /// Borrow the underlying engine (snapshot support).
    pub(crate) fn engine_ref(&self) -> &Engine<T, AdaptiveLowestLevel, Mrl99Schedule> {
        &self.engine
    }

    /// Reassemble a sketch from a restored engine and its configuration
    /// (snapshot support).
    pub(crate) fn from_parts(
        engine: Engine<T, AdaptiveLowestLevel, Mrl99Schedule>,
        config: UnknownNConfig,
        seed: u64,
    ) -> Self {
        Self {
            engine,
            config,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> OptimizerOptions {
        OptimizerOptions::fast()
    }

    #[test]
    fn median_of_uniform_stream_is_accurate() {
        let mut s = UnknownN::<u64>::with_options(0.02, 0.001, fast()).with_seed(7);
        let n = 300_000u64;
        s.extend((0..n).map(|i| (i * 2654435761) % n));
        let med = s.query(0.5).unwrap() as f64;
        assert!(
            (med - n as f64 / 2.0).abs() <= 0.02 * n as f64,
            "median {med} too far from {}",
            n / 2
        );
        assert!(s.sampling_started());
        assert!(s.memory_elements() <= s.memory_bound_elements());
    }

    #[test]
    fn queries_work_at_every_prefix() {
        let mut s = UnknownN::<u64>::with_options(0.05, 0.01, fast()).with_seed(3);
        for i in 0..50_000u64 {
            s.insert(i);
            if i % 9_999 == 0 && i > 0 {
                let q = s.query(0.5).unwrap() as f64;
                let expect = i as f64 / 2.0;
                assert!(
                    (q - expect).abs() <= 0.05 * (i + 1) as f64 + 1.0,
                    "prefix {i}: median {q} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn sorted_input_is_not_adversarial() {
        // §1.3: correctness must not depend on arrival order.
        let mut s = UnknownN::<u64>::with_options(0.02, 0.001, fast()).with_seed(11);
        let n = 200_000u64;
        s.extend(0..n);
        for (phi, expect) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)] {
            let q = s.query(phi).unwrap() as f64;
            assert!(
                (q - expect * n as f64).abs() <= 0.02 * n as f64,
                "phi={phi}: got {q}"
            );
        }
    }

    #[test]
    fn query_many_is_monotone() {
        let mut s = UnknownN::<u64>::with_options(0.05, 0.01, fast()).with_seed(5);
        s.extend((0..100_000u64).map(|i| (i * 48271) % 99_991));
        let qs = s.query_many(&[0.1, 0.3, 0.5, 0.7, 0.9]).unwrap();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
    }

    #[test]
    fn empty_sketch_returns_none() {
        let s = UnknownN::<u64>::with_options(0.1, 0.01, fast());
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.n(), 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed| {
            let mut s = UnknownN::<u64>::with_options(0.05, 0.01, fast()).with_seed(seed);
            s.extend((0..80_000u64).map(|i| (i * 31) % 77_777));
            s.query(0.5).unwrap()
        };
        assert_eq!(run(42), run(42));
    }
}
